#include "exp/tuning.hpp"

#include <limits>

#include "common/error.hpp"
#include "exp/parallel.hpp"

namespace rats {

std::vector<double> tuning_mindeltas() { return {0.0, -0.25, -0.5, -0.75}; }
std::vector<double> tuning_maxdeltas() { return {0.0, 0.25, 0.5, 0.75, 1.0}; }
std::vector<double> tuning_minrhos() { return {0.2, 0.4, 0.5, 0.6, 0.8, 1.0}; }

std::vector<double> reference_makespans(const std::vector<CorpusEntry>& corpus,
                                        const Cluster& cluster,
                                        unsigned threads) {
  std::vector<double> ref(corpus.size());
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  parallel_for(corpus.size(), [&](std::size_t e) {
    ref[e] = run_scenario(corpus[e].graph, cluster, hcpa).makespan;
  }, threads);
  return ref;
}

double average_relative_makespan(const std::vector<CorpusEntry>& corpus,
                                 const Cluster& cluster,
                                 const SchedulerOptions& options,
                                 const std::vector<double>& reference,
                                 unsigned threads) {
  RATS_REQUIRE(reference.size() == corpus.size(),
               "reference does not cover the corpus");
  std::vector<double> ratio(corpus.size());
  parallel_for(corpus.size(), [&](std::size_t e) {
    const double makespan =
        run_scenario(corpus[e].graph, cluster, options).makespan;
    ratio[e] = makespan / reference[e];
  }, threads);
  double sum = 0;
  for (double r : ratio) sum += r;
  return sum / static_cast<double>(ratio.size());
}

std::vector<double> sweep_grid(const std::vector<CorpusEntry>& corpus,
                               const Cluster& cluster,
                               const std::vector<SchedulerOptions>& points,
                               unsigned threads, RunSession* session,
                               const SimulatorOptions* base_sim) {
  RATS_REQUIRE(!corpus.empty(), "sweep needs a corpus");
  // All grid points ride through the experiment runner as one batch:
  // algo 0 is the HCPA reference, the rest are the sweep points, and
  // the whole points x corpus cross product is claimed by one worker
  // pool instead of a serial per-point loop.
  std::vector<AlgoSpec> algos;
  algos.reserve(points.size() + 1);
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;
  algos.push_back(AlgoSpec{"HCPA", hcpa});
  for (std::size_t p = 0; p < points.size(); ++p)
    algos.push_back(AlgoSpec{"point" + std::to_string(p), points[p]});

  const ExperimentData data =
      run_experiment(corpus, cluster, algos, threads, session, base_sim);

  std::vector<double> averages;
  averages.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    averages.push_back(
        summarize_relative(relative_series(data, p + 1, 0, /*makespan=*/true))
            .mean_ratio);
  return averages;
}

DeltaSweep sweep_delta(const std::vector<CorpusEntry>& corpus,
                       const Cluster& cluster, unsigned threads) {
  return sweep_delta(corpus, cluster, {}, {}, threads);
}

DeltaSweep sweep_delta(const std::vector<CorpusEntry>& corpus,
                       const Cluster& cluster,
                       const std::vector<double>& mindeltas,
                       const std::vector<double>& maxdeltas,
                       unsigned threads, RunSession* session,
                       const SimulatorOptions* base_sim) {
  DeltaSweep sweep;
  sweep.mindeltas = mindeltas.empty() ? tuning_mindeltas() : mindeltas;
  sweep.maxdeltas = maxdeltas.empty() ? tuning_maxdeltas() : maxdeltas;

  std::vector<SchedulerOptions> points;
  for (double mindelta : sweep.mindeltas) {
    for (double maxdelta : sweep.maxdeltas) {
      SchedulerOptions options;
      options.kind = SchedulerKind::RatsDelta;
      options.rats.mindelta = mindelta;
      options.rats.maxdelta = maxdelta;
      points.push_back(options);
    }
  }
  const std::vector<double> avg =
      sweep_grid(corpus, cluster, points, threads, session, base_sim);

  sweep.best_value = std::numeric_limits<double>::infinity();
  std::size_t k = 0;
  for (double mindelta : sweep.mindeltas) {
    std::vector<double> row;
    for (double maxdelta : sweep.maxdeltas) {
      const double value = avg[k++];
      row.push_back(value);
      if (value < sweep.best_value) {
        sweep.best_value = value;
        sweep.best_mindelta = mindelta;
        sweep.best_maxdelta = maxdelta;
      }
    }
    sweep.avg_relative.push_back(std::move(row));
  }
  return sweep;
}

RhoSweep sweep_rho(const std::vector<CorpusEntry>& corpus,
                   const Cluster& cluster, unsigned threads) {
  return sweep_rho(corpus, cluster, {}, threads);
}

RhoSweep sweep_rho(const std::vector<CorpusEntry>& corpus,
                   const Cluster& cluster,
                   const std::vector<double>& minrhos, unsigned threads,
                   RunSession* session, const SimulatorOptions* base_sim) {
  RhoSweep sweep;
  sweep.minrhos = minrhos.empty() ? tuning_minrhos() : minrhos;

  std::vector<SchedulerOptions> points;
  for (double minrho : sweep.minrhos) {
    for (bool packing : {true, false}) {
      SchedulerOptions options;
      options.kind = SchedulerKind::RatsTimeCost;
      options.rats.minrho = minrho;
      options.rats.packing = packing;
      points.push_back(options);
    }
  }
  const std::vector<double> avg =
      sweep_grid(corpus, cluster, points, threads, session, base_sim);

  sweep.best_value = std::numeric_limits<double>::infinity();
  std::size_t k = 0;
  for (double minrho : sweep.minrhos) {
    for (bool packing : {true, false}) {
      const double value = avg[k++];
      (packing ? sweep.with_packing : sweep.without_packing).push_back(value);
      if (packing && value < sweep.best_value) {
        sweep.best_value = value;
        sweep.best_minrho = minrho;
      }
    }
  }
  return sweep;
}

TunedParams tune(const std::vector<CorpusEntry>& corpus,
                 const Cluster& cluster, unsigned threads) {
  const DeltaSweep ds = sweep_delta(corpus, cluster, threads);
  const RhoSweep rs = sweep_rho(corpus, cluster, threads);
  return TunedParams{ds.best_mindelta, ds.best_maxdelta, rs.best_minrho};
}

}  // namespace rats
