#include "exp/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rats {

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (count == 0) return;
  unsigned workers = threads ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, count));

  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace rats
