#include "exp/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rats {

namespace {

/// Set while a thread (worker or caller) executes job bodies; a nested
/// parallel_for from such a thread runs inline instead of deadlocking
/// on the shared pool.
thread_local bool t_in_job = false;

class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  unsigned size() {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<unsigned>(threads_.size());
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& body,
           unsigned workers) {
    // One job at a time: concurrent callers queue here instead of
    // racing on the shared job slots.
    std::lock_guard<std::mutex> job_guard(run_mutex_);
    std::unique_lock<std::mutex> lock(mutex_);
    // `workers` includes the caller; pool threads provide the rest.
    const unsigned helpers = workers - 1;
    while (threads_.size() < helpers)
      threads_.emplace_back(&WorkerPool::worker_main, this,
                            static_cast<unsigned>(threads_.size()));
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_limit_ = helpers;
    ++generation_;
    lock.unlock();
    wake_cv_.notify_all();

    claim(body);  // the caller is a full participant

    lock.lock();
    done_cv_.wait(lock, [&] {
      return next_.load(std::memory_order_relaxed) >= count_ &&
             in_flight_ == 0;
    });
    active_limit_ = 0;
    const std::exception_ptr error = error_;
    lock.unlock();
    if (error) std::rethrow_exception(error);
  }

 private:
  /// Claims indices until the job is exhausted.  Touches `body` only
  /// for indices it actually claimed, so a late-woken worker that finds
  /// the job drained never dereferences a finished caller's state.
  /// After a failure the remaining indices are still claimed (the
  /// counter must reach `count_` for completion) but no longer
  /// executed — the first exception is rethrown to the caller anyway.
  void claim(const std::function<void(std::size_t)>& body) {
    t_in_job = true;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count_) break;
      if (failed_.load(std::memory_order_relaxed)) continue;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    t_in_job = false;
  }

  void worker_main(unsigned slot) {
    std::unique_lock<std::mutex> lock(mutex_);
    std::uint64_t seen = 0;
    for (;;) {
      wake_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen && slot < active_limit_);
      });
      if (stop_) return;
      seen = generation_;
      const std::function<void(std::size_t)>* body = body_;
      ++in_flight_;
      lock.unlock();
      claim(*body);
      lock.lock();
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex run_mutex_;  ///< serializes whole jobs across callers
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // Current job (guarded by mutex_ except for the atomics).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  unsigned active_limit_ = 0;   ///< pool workers allowed into the job
  unsigned in_flight_ = 0;      ///< pool workers currently inside it
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
};

}  // namespace

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (count == 0) return;
  unsigned workers = threads ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, count));

  if (workers == 1 || t_in_job) {
    // Serial, or nested inside a pool job: run inline.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  WorkerPool::instance().run(count, body, workers);
}

unsigned worker_pool_size() { return WorkerPool::instance().size(); }

}  // namespace rats
