// Corpus-scale experiment execution and the aggregations used by the
// paper's figures and tables: relative makespan/work series (Figures
// 2-3 and 6-7), pairwise better/equal/worse counts (Table V) and
// degradation from best (Table VI).
#pragma once

#include <string>
#include <vector>

#include "daggen/corpus.hpp"
#include "exp/runner.hpp"
#include "exp/session.hpp"

namespace rats {

/// One named algorithm configuration to evaluate.
struct AlgoSpec {
  std::string name;
  SchedulerOptions options;
};

/// Outcomes of running every corpus entry with every algorithm on one
/// cluster: `outcome[entry][algo]`.
struct ExperimentData {
  std::string cluster_name;
  std::vector<std::string> algo_names;
  std::vector<DagFamily> families;      ///< per corpus entry
  std::vector<std::string> entry_names; ///< per corpus entry
  std::vector<std::vector<RunOutcome>> outcome;

  std::size_t entries() const { return outcome.size(); }
  std::size_t algos() const { return algo_names.size(); }
};

/// Runs the full cross product corpus x algos on `cluster`, in
/// parallel over scenarios (`threads` workers, 0 = hardware
/// concurrency).  `session`, when given, observes every run (run index
/// = entry * algos + algo) and may attach per-run trace sinks — this is
/// how a traced scenario shares one simulation pass between report and
/// trace (see exp/session.hpp).  `base_sim`, when given, seeds every
/// run's SimulatorOptions (per-run trace sinks are layered on top) —
/// the hook a platform event timeline rides in on.
ExperimentData run_experiment(const std::vector<CorpusEntry>& corpus,
                              const Cluster& cluster,
                              const std::vector<AlgoSpec>& algos,
                              unsigned threads = 0,
                              RunSession* session = nullptr,
                              const SimulatorOptions* base_sim = nullptr);

/// Per-entry ratio metric(algo) / metric(reference algo), e.g. the
/// "makespan relative to HCPA" of Figures 2 and 6.  `metric` selects
/// makespan (true) or work (false).
std::vector<double> relative_series(const ExperimentData& data,
                                    std::size_t algo, std::size_t reference,
                                    bool makespan);

/// Summary of one relative series: its mean and the fraction of
/// entries strictly below 1 (i.e. better than the reference).
struct RelativeSummary {
  double mean_ratio{};
  double fraction_better{};
  double fraction_equal{};
};
RelativeSummary summarize_relative(const std::vector<double>& ratios,
                                   double tolerance = 1e-6);

/// Pairwise comparison counts of Table V.
struct PairwiseCounts {
  int better = 0;
  int equal = 0;
  int worse = 0;
};

/// Compares makespans of `algo_a` vs `algo_b` over all entries.
PairwiseCounts pairwise_compare(const ExperimentData& data, std::size_t algo_a,
                                std::size_t algo_b, double tolerance = 1e-6);

/// "Combined" columns of Table V: better/equal/worse of `algo` against
/// the best of all other algorithms, as fractions of the corpus.
struct CombinedFractions {
  double better{};
  double equal{};
  double worse{};
};
CombinedFractions combined_compare(const ExperimentData& data,
                                   std::size_t algo,
                                   double tolerance = 1e-6);

/// Degradation-from-best statistics of Table VI for one algorithm.
struct Degradation {
  double avg_over_all{};       ///< mean over every experiment
  int not_best = 0;            ///< experiments where the algo was not best
  double avg_over_not_best{};  ///< mean over those experiments only
};
Degradation degradation_from_best(const ExperimentData& data,
                                  std::size_t algo, double tolerance = 1e-6);

/// Sorted copy of a series sampled at `points` evenly spaced
/// percentiles — the compact rendering of the paper's sorted-curve
/// figures.
std::vector<double> sorted_curve(std::vector<double> series, int points = 21);

}  // namespace rats
