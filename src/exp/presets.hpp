// Paper-experiment presets shared by the bench binaries and the
// scenario engine: corpus construction (with the benches' stdout
// announcements), the naive/tuned algorithm sets of the paper's main
// comparison, tuned multi-cluster batch execution, and the small
// report helpers (headings, sorted percentile curves).
//
// Everything here used to live in bench/bench_common.*; it moved into
// the library so `rats run scenarios/fig2.rats` and the fig2 binary
// execute — and print — the exact same code path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daggen/corpus.hpp"
#include "exp/experiment.hpp"
#include "exp/session.hpp"
#include "platform/grid5000.hpp"
#include "sched/scheduler.hpp"

namespace rats::presets {

/// Corpus sizing shared by every bench command line and scenario
/// workload section.  Without `full` the corpus is scaled down (1
/// random sample, 5 kernel samples) so a whole suite runs in minutes;
/// relative results are stable across corpus sizes because every entry
/// is an independent scenario.
struct CorpusConfig {
  bool full = false;
  int samples_random = 1;
  int samples_kernel = 5;
  std::uint64_t seed = 42;
};

/// Corpus options implied by the config (full restores the paper's
/// 3/25 sampling).
CorpusOptions corpus_options(const CorpusConfig& cfg);

/// Builds the corpus (all families) for the config.  `announce`, when
/// given, receives the legacy "corpus: ..." size line (the report
/// models capture it; nullptr stays silent).
std::vector<CorpusEntry> make_corpus(const CorpusConfig& cfg,
                                     std::string* announce = nullptr);

/// Builds one family's sub-corpus for the config.
std::vector<CorpusEntry> make_family(DagFamily family,
                                     const CorpusConfig& cfg,
                                     std::string* announce = nullptr);

/// Keeps at most `n` entries of each family (deterministic stride
/// subsample, preserving parameter diversity).  No-op when n == 0 or
/// cfg.full was given — heavy benches use this to stay tractable on
/// small machines while --full restores the complete corpus.
/// `announce`, when given, receives the "(capped to ...)" line (quiet
/// callers like the trace replay must still pick identical entries).
std::vector<CorpusEntry> cap_per_family(std::vector<CorpusEntry> corpus,
                                        const CorpusConfig& cfg, int n,
                                        std::string* announce = nullptr);

/// The three algorithm specs of the paper's main comparison with naive
/// RATS parameters (Figures 2-3): HCPA, delta(0.5), time-cost(0.5).
std::vector<AlgoSpec> naive_algos();

/// The paper's tuned RATS parameters (Table IV) for one application
/// family on one cluster (cluster matched by name).
RatsParams paper_tuned_params(DagFamily family, const std::string& cluster);

/// Algorithm specs with Table IV tuned parameters for `family` on
/// `cluster`: HCPA, tuned delta, tuned time-cost.
std::vector<AlgoSpec> tuned_algos(DagFamily family,
                                  const std::string& cluster);

/// Runs HCPA / tuned delta / tuned time-cost on `corpus` grouped by
/// family (each family uses its Table IV parameters for `cluster`) and
/// returns the merged outcomes in corpus order.  Algorithm order:
/// {HCPA, delta, time-cost}.  `session` observes every run (see
/// exp/session.hpp); run index = entry * 3 + algo.  `base_sim` seeds
/// every run's SimulatorOptions (see run_experiment).
ExperimentData run_tuned_experiment(const std::vector<CorpusEntry>& corpus,
                                    const Cluster& cluster,
                                    unsigned threads = 0,
                                    RunSession* session = nullptr,
                                    const SimulatorOptions* base_sim = nullptr);

/// Multi-cluster form of `run_tuned_experiment`: every (cluster, corpus
/// entry, algorithm) scenario becomes one job in a single batch through
/// the persistent worker pool, so multi-cluster tables (V, VI) keep all
/// `--threads` workers busy across cluster boundaries instead of
/// draining the pool once per cluster and family.  Results are in
/// `clusters` order, each in corpus order.  `session` observes every
/// job (run index = (cluster * entries + entry) * 3 + algo).
std::vector<ExperimentData> run_tuned_experiments(
    const std::vector<CorpusEntry>& corpus,
    const std::vector<Cluster>& clusters, unsigned threads = 0,
    RunSession* session = nullptr,
    const SimulatorOptions* base_sim = nullptr);

/// Prints a heading followed by an underline.
void heading(const std::string& title);

/// Renders a 21-point sorted percentile curve as an ASCII sparkline
/// table row set ("x%  ratio").
void print_sorted_curve(const std::string& label,
                        const std::vector<double>& series);

}  // namespace rats::presets
