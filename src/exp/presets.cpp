#include "exp/presets.hpp"

#include <cstdio>
#include <iterator>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "exp/parallel.hpp"

namespace rats::presets {

CorpusOptions corpus_options(const CorpusConfig& cfg) {
  CorpusOptions opt;
  opt.seed = cfg.seed;
  if (cfg.full) {
    opt.random_samples = 3;
    opt.kernel_samples = 25;
  } else {
    opt.random_samples = cfg.samples_random;
    opt.kernel_samples = cfg.samples_kernel;
  }
  return opt;
}

std::vector<CorpusEntry> make_corpus(const CorpusConfig& cfg,
                                     std::string* announce) {
  auto corpus = build_corpus(corpus_options(cfg));
  if (announce)
    *announce += strf("corpus: %zu configurations (%s)\n", corpus.size(),
                      cfg.full ? "paper scale"
                               : "reduced scale; use --full for 557");
  return corpus;
}

std::vector<CorpusEntry> make_family(DagFamily family,
                                     const CorpusConfig& cfg,
                                     std::string* announce) {
  auto corpus = build_family(family, corpus_options(cfg));
  if (announce)
    *announce += strf("corpus: %zu %s configurations (%s)\n", corpus.size(),
                      to_string(family).c_str(),
                      cfg.full ? "paper scale" : "reduced scale; use --full");
  return corpus;
}

std::vector<CorpusEntry> cap_per_family(std::vector<CorpusEntry> corpus,
                                        const CorpusConfig& cfg, int n,
                                        std::string* announce) {
  if (n <= 0 || cfg.full) return corpus;
  std::vector<CorpusEntry> capped;
  for (DagFamily family : {DagFamily::Layered, DagFamily::Irregular,
                           DagFamily::FFT, DagFamily::Strassen}) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < corpus.size(); ++i)
      if (corpus[i].family == family) idx.push_back(i);
    if (idx.empty()) continue;
    // Stride subsample keeps the spread over the parameter grid.
    const std::size_t keep = std::min<std::size_t>(idx.size(),
                                                   static_cast<std::size_t>(n));
    for (std::size_t k = 0; k < keep; ++k)
      capped.push_back(corpus[idx[k * idx.size() / keep]]);
  }
  if (announce && capped.size() < corpus.size())
    *announce += strf("  (capped to %zu entries; --full runs all %zu)\n",
                      capped.size(), corpus.size());
  return capped;
}

std::vector<AlgoSpec> naive_algos() {
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;

  SchedulerOptions delta;
  delta.kind = SchedulerKind::RatsDelta;
  delta.rats.mindelta = -0.5;
  delta.rats.maxdelta = 0.5;

  SchedulerOptions timecost;
  timecost.kind = SchedulerKind::RatsTimeCost;
  timecost.rats.minrho = 0.5;
  timecost.rats.packing = true;

  return {{"HCPA", hcpa}, {"delta", delta}, {"time-cost", timecost}};
}

RatsParams paper_tuned_params(DagFamily family, const std::string& cluster) {
  // Table IV: (mindelta, maxdelta, minrho) per application type and
  // cluster.  Row order: chti, grillon, grelon.
  struct Cell {
    double mindelta, maxdelta, minrho;
  };
  auto pick = [&](Cell chti, Cell grillon, Cell grelon) {
    if (cluster == "chti") return chti;
    if (cluster == "grelon") return grelon;
    return grillon;  // default to the paper's most-shown cluster
  };
  Cell c{};
  switch (family) {
    case DagFamily::FFT:
      c = pick({-.5, 1, .2}, {-.5, 1, .2}, {-.25, .75, .4});
      break;
    case DagFamily::Strassen:
      c = pick({-.25, .5, .5}, {0, 1, .4}, {-.25, 1, .5});
      break;
    case DagFamily::Layered:
      c = pick({-.5, 1, .2}, {-.25, 1, .2}, {-.5, 1, .2});
      break;
    case DagFamily::Irregular:
      c = pick({-.75, 1, .5}, {-.75, 1, .5}, {-.75, 1, .4});
      break;
  }
  RatsParams p;
  p.mindelta = c.mindelta;
  p.maxdelta = c.maxdelta;
  p.minrho = c.minrho;
  p.packing = true;
  return p;
}

std::vector<AlgoSpec> tuned_algos(DagFamily family,
                                  const std::string& cluster) {
  auto algos = naive_algos();
  RatsParams tuned = paper_tuned_params(family, cluster);
  algos[1].options.rats = tuned;
  algos[2].options.rats = tuned;
  return algos;
}

ExperimentData run_tuned_experiment(const std::vector<CorpusEntry>& corpus,
                                    const Cluster& cluster,
                                    unsigned threads, RunSession* session,
                                    const SimulatorOptions* base_sim) {
  return run_tuned_experiments(corpus, {cluster}, threads, session, base_sim)
      .front();
}

std::vector<ExperimentData> run_tuned_experiments(
    const std::vector<CorpusEntry>& corpus,
    const std::vector<Cluster>& clusters, unsigned threads,
    RunSession* session, const SimulatorOptions* base_sim) {
  constexpr DagFamily kFamilies[] = {DagFamily::Layered, DagFamily::Irregular,
                                     DagFamily::FFT, DagFamily::Strassen};
  const std::size_t num_algos = 3;

  // Per (cluster, family) tuned algorithm specs, resolved up front so
  // jobs only read shared state.
  std::vector<std::vector<std::vector<AlgoSpec>>> specs(clusters.size());
  std::vector<ExperimentData> results(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const DagFamily family : kFamilies)
      specs[c].push_back(tuned_algos(family, clusters[c].name()));
    results[c].cluster_name = clusters[c].name();
    results[c].algo_names = {"HCPA", "delta", "time-cost"};
    results[c].families.reserve(corpus.size());
    results[c].entry_names.reserve(corpus.size());
    for (const auto& entry : corpus) {
      results[c].families.push_back(entry.family);
      results[c].entry_names.push_back(entry.name);
    }
    results[c].outcome.assign(corpus.size(),
                              std::vector<RunOutcome>(num_algos));
  }
  const auto family_index = [&](DagFamily family) {
    for (std::size_t k = 0; k < std::size(kFamilies); ++k)
      if (kFamilies[k] == family) return k;
    RATS_REQUIRE(false, "unknown DAG family");
    return std::size_t{0};
  };

  // One flat (cluster, entry, algo) batch: every scenario is an
  // independent job, each writing only its own outcome slot.
  const std::size_t per_cluster = corpus.size() * num_algos;
  if (session) session->begin_matrix(clusters.size() * per_cluster);
  parallel_for(clusters.size() * per_cluster, [&](std::size_t j) {
    const std::size_t c = j / per_cluster;
    const std::size_t e = (j % per_cluster) / num_algos;
    const std::size_t a = j % num_algos;
    const AlgoSpec& spec =
        specs[c][family_index(corpus[e].family)][a];
    const RunMeta meta{corpus[e].name, spec.name, clusters[c].name()};
    if (session && session->inject(j, meta, results[c].outcome[e][a])) return;
    SimulatorOptions sim = base_sim ? *base_sim : SimulatorOptions{};
    if (session) sim.trace = session->begin_run(j, meta);
    results[c].outcome[e][a] =
        run_scenario(corpus[e].graph, clusters[c], spec.options, sim);
    if (session) session->end_run(j, results[c].outcome[e][a]);
  }, threads);
  return results;
}

void heading(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '=').c_str());
}

void print_sorted_curve(const std::string& label,
                        const std::vector<double>& series) {
  auto curve = sorted_curve(series, 21);
  std::printf("  %s (sorted, percentiles of the corpus):\n    ", label.c_str());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("%s%s", fmt(curve[i], 2).c_str(),
                i + 1 == curve.size() ? "\n" : " ");
  }
}

}  // namespace rats::presets
