#include "exp/experiment.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "exp/parallel.hpp"

namespace rats {

ExperimentData run_experiment(const std::vector<CorpusEntry>& corpus,
                              const Cluster& cluster,
                              const std::vector<AlgoSpec>& algos,
                              unsigned threads, RunSession* session,
                              const SimulatorOptions* base_sim) {
  RATS_REQUIRE(!corpus.empty() && !algos.empty(),
               "experiment needs a corpus and algorithms");
  ExperimentData data;
  data.cluster_name = cluster.name();
  for (const auto& a : algos) data.algo_names.push_back(a.name);
  data.families.reserve(corpus.size());
  data.entry_names.reserve(corpus.size());
  for (const auto& entry : corpus) {
    data.families.push_back(entry.family);
    data.entry_names.push_back(entry.name);
  }
  data.outcome.assign(corpus.size(),
                      std::vector<RunOutcome>(algos.size()));

  const std::size_t jobs = corpus.size() * algos.size();
  if (session) session->begin_matrix(jobs);
  parallel_for(jobs, [&](std::size_t j) {
    const std::size_t e = j / algos.size();
    const std::size_t a = j % algos.size();
    const RunMeta meta{corpus[e].name, algos[a].name, cluster.name()};
    if (session && session->inject(j, meta, data.outcome[e][a])) return;
    SimulatorOptions sim = base_sim ? *base_sim : SimulatorOptions{};
    if (session) sim.trace = session->begin_run(j, meta);
    data.outcome[e][a] =
        run_scenario(corpus[e].graph, cluster, algos[a].options, sim);
    if (session) session->end_run(j, data.outcome[e][a]);
  }, threads);
  return data;
}

std::vector<double> relative_series(const ExperimentData& data,
                                    std::size_t algo, std::size_t reference,
                                    bool makespan) {
  RATS_REQUIRE(algo < data.algos() && reference < data.algos(),
               "algorithm index out of range");
  std::vector<double> ratios;
  ratios.reserve(data.entries());
  for (std::size_t e = 0; e < data.entries(); ++e) {
    const double num = makespan ? data.outcome[e][algo].makespan
                                : data.outcome[e][algo].work;
    const double den = makespan ? data.outcome[e][reference].makespan
                                : data.outcome[e][reference].work;
    RATS_REQUIRE(den > 0, "reference metric must be positive");
    ratios.push_back(num / den);
  }
  return ratios;
}

RelativeSummary summarize_relative(const std::vector<double>& ratios,
                                   double tolerance) {
  RelativeSummary s;
  if (ratios.empty()) return s;
  double sum = 0;
  int better = 0;
  int equal = 0;
  for (double r : ratios) {
    sum += r;
    if (std::abs(r - 1.0) <= tolerance) {
      ++equal;
    } else if (r < 1.0) {
      ++better;
    }
  }
  const auto n = static_cast<double>(ratios.size());
  s.mean_ratio = sum / n;
  s.fraction_better = better / n;
  s.fraction_equal = equal / n;
  return s;
}

namespace {
int compare_with_tolerance(double a, double b, double tolerance) {
  // Relative comparison: runs are "equal" when within `tolerance` of
  // each other (identical schedules simulate to identical times; the
  // tolerance only absorbs floating-point noise).
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  const double diff = (a - b) / scale;
  if (diff < -tolerance) return -1;
  if (diff > tolerance) return 1;
  return 0;
}
}  // namespace

PairwiseCounts pairwise_compare(const ExperimentData& data, std::size_t algo_a,
                                std::size_t algo_b, double tolerance) {
  PairwiseCounts c;
  for (std::size_t e = 0; e < data.entries(); ++e) {
    const int cmp = compare_with_tolerance(data.outcome[e][algo_a].makespan,
                                           data.outcome[e][algo_b].makespan,
                                           tolerance);
    if (cmp < 0) {
      ++c.better;  // a's makespan smaller: a better
    } else if (cmp > 0) {
      ++c.worse;
    } else {
      ++c.equal;
    }
  }
  return c;
}

CombinedFractions combined_compare(const ExperimentData& data,
                                   std::size_t algo, double tolerance) {
  CombinedFractions f;
  if (data.entries() == 0) return f;
  int better = 0;
  int equal = 0;
  int worse = 0;
  for (std::size_t e = 0; e < data.entries(); ++e) {
    double best_other = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < data.algos(); ++a)
      if (a != algo)
        best_other = std::min(best_other, data.outcome[e][a].makespan);
    const int cmp = compare_with_tolerance(data.outcome[e][algo].makespan,
                                           best_other, tolerance);
    if (cmp < 0) {
      ++better;
    } else if (cmp > 0) {
      ++worse;
    } else {
      ++equal;
    }
  }
  const auto n = static_cast<double>(data.entries());
  f.better = better / n;
  f.equal = equal / n;
  f.worse = worse / n;
  return f;
}

Degradation degradation_from_best(const ExperimentData& data,
                                  std::size_t algo, double tolerance) {
  Degradation d;
  if (data.entries() == 0) return d;
  double sum_all = 0;
  double sum_not_best = 0;
  for (std::size_t e = 0; e < data.entries(); ++e) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < data.algos(); ++a)
      best = std::min(best, data.outcome[e][a].makespan);
    const double mine = data.outcome[e][algo].makespan;
    const double degradation = (mine - best) / best;
    sum_all += degradation;
    if (compare_with_tolerance(mine, best, tolerance) > 0) {
      ++d.not_best;
      sum_not_best += degradation;
    }
  }
  d.avg_over_all = sum_all / static_cast<double>(data.entries());
  d.avg_over_not_best = d.not_best ? sum_not_best / d.not_best : 0.0;
  return d;
}

std::vector<double> sorted_curve(std::vector<double> series, int points) {
  RATS_REQUIRE(points >= 2, "curve needs at least two points");
  std::sort(series.begin(), series.end());
  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(points));
  if (series.empty()) return curve;
  for (int i = 0; i < points; ++i) {
    const double pos = static_cast<double>(i) / (points - 1) *
                       static_cast<double>(series.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, series.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    curve.push_back(series[lo] + frac * (series[hi] - series[lo]));
  }
  return curve;
}

}  // namespace rats
