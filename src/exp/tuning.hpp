// Parameter tuning experiments (paper Section IV-C): sweep the RATS
// parameters against the HCPA reference and pick, per application type
// and cluster, the values minimizing the average relative makespan —
// Figures 4 and 5 and Table IV.
#pragma once

#include <vector>

#include "daggen/corpus.hpp"
#include "exp/experiment.hpp"

namespace rats {

/// Parameter values tested in the paper.
std::vector<double> tuning_mindeltas();  ///< {0, -0.25, -0.5, -0.75}
std::vector<double> tuning_maxdeltas();  ///< {0, 0.25, 0.5, 0.75, 1}
std::vector<double> tuning_minrhos();    ///< {0.2, 0.4, 0.5, 0.6, 0.8, 1}

/// HCPA reference makespans for a corpus on one cluster (computed in
/// parallel, reused across sweep points).
std::vector<double> reference_makespans(const std::vector<CorpusEntry>& corpus,
                                        const Cluster& cluster,
                                        unsigned threads = 0);

/// Average makespan of `options` relative to per-entry `reference`.
double average_relative_makespan(const std::vector<CorpusEntry>& corpus,
                                 const Cluster& cluster,
                                 const SchedulerOptions& options,
                                 const std::vector<double>& reference,
                                 unsigned threads = 0);

/// Average relative makespan (vs a freshly computed HCPA reference) of
/// every sweep point, batched through the experiment runner as one
/// (points + reference) x corpus parallel job.  `session` observes
/// every run of that batch (run index = entry * (points + 1) + algo,
/// algo 0 being the HCPA reference) — the hook that lets the generic
/// sweep kind trace its whole grid in the pass that scores it.
/// `base_sim` seeds every run's SimulatorOptions (see run_experiment)
/// — how a platform event timeline degrades a whole sweep.
std::vector<double> sweep_grid(const std::vector<CorpusEntry>& corpus,
                               const Cluster& cluster,
                               const std::vector<SchedulerOptions>& points,
                               unsigned threads = 0,
                               RunSession* session = nullptr,
                               const SimulatorOptions* base_sim = nullptr);

/// The (mindelta, maxdelta) surface of Figure 4.
struct DeltaSweep {
  std::vector<double> mindeltas;
  std::vector<double> maxdeltas;
  /// avg relative makespan, indexed [mindelta][maxdelta]
  std::vector<std::vector<double>> avg_relative;
  double best_mindelta{};
  double best_maxdelta{};
  double best_value{};
};
DeltaSweep sweep_delta(const std::vector<CorpusEntry>& corpus,
                       const Cluster& cluster, unsigned threads = 0);

/// Custom-grid form (the scenario engine's [sweep] section); an empty
/// list falls back to that parameter's paper grid above.
DeltaSweep sweep_delta(const std::vector<CorpusEntry>& corpus,
                       const Cluster& cluster,
                       const std::vector<double>& mindeltas,
                       const std::vector<double>& maxdeltas,
                       unsigned threads = 0, RunSession* session = nullptr,
                       const SimulatorOptions* base_sim = nullptr);

/// The minrho curves (packing on/off) of Figure 5.
struct RhoSweep {
  std::vector<double> minrhos;
  std::vector<double> with_packing;     ///< avg relative makespan
  std::vector<double> without_packing;
  double best_minrho{};
  double best_value{};  ///< with packing (always at least as good)
};
RhoSweep sweep_rho(const std::vector<CorpusEntry>& corpus,
                   const Cluster& cluster, unsigned threads = 0);

/// Custom-grid form (the scenario engine's [sweep] section); an empty
/// list falls back to the paper grid.
RhoSweep sweep_rho(const std::vector<CorpusEntry>& corpus,
                   const Cluster& cluster,
                   const std::vector<double>& minrhos, unsigned threads = 0,
                   RunSession* session = nullptr,
                   const SimulatorOptions* base_sim = nullptr);

/// One Table IV cell: tuned (mindelta, maxdelta, minrho).
struct TunedParams {
  double mindelta{};
  double maxdelta{};
  double minrho{};
};
TunedParams tune(const std::vector<CorpusEntry>& corpus,
                 const Cluster& cluster, unsigned threads = 0);

}  // namespace rats
