#include "daggen/random_dag.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rats {

namespace {

void check_params(const RandomDagParams& p) {
  RATS_REQUIRE(p.num_tasks >= 1, "need at least one task");
  RATS_REQUIRE(p.width > 0.0 && p.width <= 1.0, "width in (0,1]");
  RATS_REQUIRE(p.density > 0.0 && p.density <= 1.0, "density in (0,1]");
  RATS_REQUIRE(p.regularity > 0.0 && p.regularity <= 1.0,
               "regularity in (0,1]");
  RATS_REQUIRE(p.jump >= 1, "jump >= 1");
}

/// Splits `num_tasks` into level sizes according to width/regularity.
std::vector<int> draw_level_sizes(const RandomDagParams& p, Rng& rng) {
  const double perfect = std::clamp(
      std::pow(static_cast<double>(p.num_tasks), p.width), 1.0,
      static_cast<double>(p.num_tasks));
  std::vector<int> sizes;
  int assigned = 0;
  while (assigned < p.num_tasks) {
    const double jitter = rng.uniform(p.regularity, 2.0 - p.regularity);
    int size = static_cast<int>(std::lround(perfect * jitter));
    size = std::clamp(size, 1, p.num_tasks - assigned);
    sizes.push_back(size);
    assigned += size;
  }
  return sizes;
}

/// Chooses `k` distinct values in [0, n) uniformly (partial
/// Fisher-Yates over an index vector; n is small).
std::vector<int> sample_without_replacement(int n, int k, Rng& rng) {
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(i, n - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

/// Connects consecutive levels with density-controlled random edges and
/// patches childless producers.  `task_of[l][i]` maps level positions
/// to task ids; `bytes_of(t)` gives the producer's transfer volume.
template <typename BytesOf>
void connect_levels(TaskGraph& g, const std::vector<std::vector<TaskId>>& task_of,
                    double density, Rng& rng, const BytesOf& bytes_of) {
  for (std::size_t l = 0; l + 1 < task_of.size(); ++l) {
    const auto& producers = task_of[l];
    const auto& consumers = task_of[l + 1];
    const int np = static_cast<int>(producers.size());
    std::vector<char> has_child(producers.size(), 0);

    for (TaskId consumer : consumers) {
      const int parents = std::clamp(
          1 + static_cast<int>(std::lround(density * rng.uniform() * (np - 1))),
          1, np);
      for (int idx : sample_without_replacement(np, parents, rng)) {
        const TaskId producer = producers[static_cast<std::size_t>(idx)];
        g.add_edge(producer, consumer, bytes_of(producer));
        has_child[static_cast<std::size_t>(idx)] = 1;
      }
    }
    // No task may dead-end before the last level: give childless
    // producers one random consumer.
    for (std::size_t i = 0; i < producers.size(); ++i) {
      if (has_child[i]) continue;
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(consumers.size()) - 1));
      g.add_edge(producers[i], consumers[j], bytes_of(producers[i]));
    }
  }
}

}  // namespace

TaskGraph generate_layered_dag(const RandomDagParams& params, Rng& rng) {
  check_params(params);
  const auto sizes = draw_level_sizes(params, rng);

  TaskGraph g;
  std::vector<std::vector<TaskId>> task_of(sizes.size());
  std::vector<double> level_m(sizes.size());
  for (std::size_t l = 0; l < sizes.size(); ++l) {
    // One cost draw per level: all tasks of the level are identical, so
    // all transfers between two given levels share one volume.
    const TaskCost cost = draw_cost(rng, params.costs);
    level_m[l] = cost.m;
    for (int i = 0; i < sizes[l]; ++i) {
      task_of[l].push_back(g.add_task(
          "L" + std::to_string(l) + "." + std::to_string(i), cost.m, cost.a,
          cost.alpha));
    }
  }
  connect_levels(g, task_of, params.density, rng, [&](TaskId t) {
    return edge_bytes_for(g.task(t).data_elems);
  });
  return g;
}

TaskGraph generate_irregular_dag(const RandomDagParams& params, Rng& rng) {
  check_params(params);
  const auto sizes = draw_level_sizes(params, rng);

  TaskGraph g;
  std::vector<std::vector<TaskId>> task_of(sizes.size());
  for (std::size_t l = 0; l < sizes.size(); ++l) {
    for (int i = 0; i < sizes[l]; ++i) {
      // Per-task cost draw: levels mix cheap and expensive tasks.
      const TaskCost cost = draw_cost(rng, params.costs);
      task_of[l].push_back(g.add_task(
          "I" + std::to_string(l) + "." + std::to_string(i), cost.m, cost.a,
          cost.alpha));
    }
  }
  auto bytes_of = [&](TaskId t) { return edge_bytes_for(g.task(t).data_elems); };
  connect_levels(g, task_of, params.density, rng, bytes_of);

  // Jump edges from level l to level l + jump (jump = 1 is a no-op:
  // those edges already exist structurally).
  if (params.jump > 1) {
    for (std::size_t l = 0; l + static_cast<std::size_t>(params.jump) <
                            task_of.size(); ++l) {
      const auto& producers = task_of[l];
      const auto& consumers = task_of[l + static_cast<std::size_t>(params.jump)];
      for (TaskId consumer : consumers) {
        if (!rng.bernoulli(params.density / 2.0)) continue;
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(producers.size()) - 1));
        g.add_edge(producers[i], consumer, bytes_of(producers[i]));
      }
    }
  }
  return g;
}

}  // namespace rats
