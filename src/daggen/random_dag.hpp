// Random layered and irregular DAG generators (paper Section IV-A and
// Table III), following the semantics of the authors' public DAG
// generation program:
//
//  * width in (0,1]: maximum parallelism.  The "perfect" number of
//    tasks per level is N^width — a small value yields chain-like
//    graphs, a large value fork-join graphs.
//  * regularity in (0,1]: uniformity of level sizes.  Each level's size
//    is the perfect size scaled by a factor drawn uniformly in
//    [regularity, 2 - regularity].
//  * density in (0,1]: how many edges connect consecutive levels.  Each
//    task draws 1 + round(density * U(0,1) * (size of previous level - 1))
//    distinct parents; parent-less producers are patched with one child
//    so no task is dead-ended mid-graph.
//  * jump (irregular only): extra edges from level l to level l + jump
//    for jump in {1,2,4}; jump = 1 adds no level-skipping edges.
//
// Layered DAGs give all tasks of a level identical cost parameters (so
// all transfers between two levels cost the same); irregular DAGs draw
// costs per task, capturing heterogeneous scientific workflows.
#pragma once

#include "common/rng.hpp"
#include "daggen/cost_model.hpp"
#include "dag/task_graph.hpp"

namespace rats {

/// Shape parameters of a random DAG.
struct RandomDagParams {
  int num_tasks = 25;        ///< 25, 50 or 100 in the paper
  double width = 0.5;        ///< 0.2, 0.5, 0.8
  double density = 0.2;      ///< 0.2, 0.8
  double regularity = 0.2;   ///< 0.2, 0.8
  int jump = 1;              ///< 1, 2, 4 (irregular DAGs only)
  CostRanges costs{};
};

/// Generates a layered random DAG: per-level uniform task costs.
TaskGraph generate_layered_dag(const RandomDagParams& params, Rng& rng);

/// Generates an irregular random DAG: per-task costs and jump edges.
TaskGraph generate_irregular_dag(const RandomDagParams& params, Rng& rng);

}  // namespace rats
