// The paper's evaluation corpus (Table III): 557 application
// configurations.
//
//   layered   : {25,50,100} tasks x width {.2,.5,.8} x density {.2,.8}
//               x regularity {.2,.8} x 3 samples            = 108
//   irregular : layered grid x jump {1,2,4}                 = 324
//   FFT       : k in {2,4,8,16} x 25 samples                = 100
//   Strassen  : 25 samples                                  =  25
//                                                     total = 557
//
// Every configuration derives its RNG stream from the corpus master
// seed and its own index, so corpora are reproducible and individual
// entries can be regenerated in isolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daggen/kernels.hpp"
#include "daggen/random_dag.hpp"
#include "dag/task_graph.hpp"

namespace rats {

/// The four application families of the evaluation.
enum class DagFamily { Layered, Irregular, FFT, Strassen };

/// Printable family name ("layered", "irregular", "fft", "strassen").
std::string to_string(DagFamily family);

/// One corpus entry: its provenance and the generated graph.
struct CorpusEntry {
  DagFamily family{};
  std::string name;        ///< unique, e.g. "layered/n50/w0.5/d0.8/r0.2/s1"
  RandomDagParams params;  ///< random families only
  int fft_k = 0;           ///< FFT only
  int sample = 0;
  TaskGraph graph;
};

/// Options to build all or part of the corpus.
struct CorpusOptions {
  std::uint64_t seed = 42;
  /// Samples per random-DAG parameter combination (paper: 3).
  int random_samples = 3;
  /// Samples per FFT size and for Strassen (paper: 25).
  int kernel_samples = 25;
};

/// All 557 configurations of Table III (with default options).
std::vector<CorpusEntry> build_corpus(const CorpusOptions& options = {});

/// A single family, same indexing/derivation as the full corpus.
std::vector<CorpusEntry> build_family(DagFamily family,
                                      const CorpusOptions& options = {});

}  // namespace rats
