// Task cost generation (paper Section II-A).
//
// Every data-parallel task operates on m double-precision elements
// with 4M <= m <= 121M (processors have at most 1 GiB of memory:
// 121 * 2^20 elements * 8 bytes ~ 0.95 GiB).  Computational complexity
// is a*m flops with a drawn in [2^6, 2^9], capturing multi-iteration
// kernels such as stencils; the Amdahl non-parallelizable fraction
// alpha is drawn uniformly in [0, 0.25].  Following the paper's edge
// model literally ("the amount of data (in bytes) that task ni must
// send ... is equal to m"), a task sends m bytes to each child.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace rats {

/// Ranges for the random task parameters.
struct CostRanges {
  double m_min = 4.0 * 1024 * 1024;     ///< 4M elements
  double m_max = 121.0 * 1024 * 1024;   ///< 121M elements (1 GiB of doubles)
  double a_min = 64.0;                  ///< 2^6 operations per element
  double a_max = 512.0;                 ///< 2^9 operations per element
  double alpha_min = 0.0;
  double alpha_max = 0.25;
};

/// A draw of the three task parameters.
struct TaskCost {
  double m{};      ///< dataset elements
  double a{};      ///< operations per element
  double alpha{};  ///< non-parallelizable fraction
};

/// Draws one cost tuple uniformly from the given ranges.
TaskCost draw_cost(Rng& rng, const CostRanges& ranges = {});

/// Bytes a task with dataset size `m` sends to each child (the paper's
/// literal edge model: m bytes).
Bytes edge_bytes_for(double m);

}  // namespace rats
