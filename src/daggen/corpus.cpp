#include "daggen/corpus.hpp"

#include <array>

#include "common/error.hpp"
#include "common/table.hpp"

namespace rats {

std::string to_string(DagFamily family) {
  switch (family) {
    case DagFamily::Layered: return "layered";
    case DagFamily::Irregular: return "irregular";
    case DagFamily::FFT: return "fft";
    case DagFamily::Strassen: return "strassen";
  }
  return "?";
}

namespace {

constexpr std::array<int, 3> kSizes = {25, 50, 100};
constexpr std::array<double, 3> kWidths = {0.2, 0.5, 0.8};
constexpr std::array<double, 2> kDensities = {0.2, 0.8};
constexpr std::array<double, 2> kRegularities = {0.2, 0.8};
constexpr std::array<int, 3> kJumps = {1, 2, 4};
constexpr std::array<int, 4> kFftPoints = {2, 4, 8, 16};

// Disjoint stream bases per family so adding samples to one family
// never changes another family's graphs.
constexpr std::uint64_t kStreamLayered = 1u << 20;
constexpr std::uint64_t kStreamIrregular = 2u << 20;
constexpr std::uint64_t kStreamFft = 3u << 20;
constexpr std::uint64_t kStreamStrassen = 4u << 20;

std::string random_name(DagFamily family, const RandomDagParams& p,
                        int sample) {
  std::string name = to_string(family) + "/n" + std::to_string(p.num_tasks) +
                     "/w" + fmt(p.width, 1) + "/d" + fmt(p.density, 1) + "/r" +
                     fmt(p.regularity, 1);
  if (family == DagFamily::Irregular) name += "/j" + std::to_string(p.jump);
  return name + "/s" + std::to_string(sample);
}

void build_random_family(DagFamily family, const CorpusOptions& options,
                         std::vector<CorpusEntry>& out) {
  const Rng master(options.seed);
  const std::uint64_t base =
      family == DagFamily::Layered ? kStreamLayered : kStreamIrregular;
  const auto jumps = family == DagFamily::Irregular
                         ? std::vector<int>(kJumps.begin(), kJumps.end())
                         : std::vector<int>{1};
  std::uint64_t stream = 0;
  for (int n : kSizes)
    for (double width : kWidths)
      for (double density : kDensities)
        for (double regularity : kRegularities)
          for (int jump : jumps)
            for (int sample = 0; sample < options.random_samples; ++sample) {
              RandomDagParams p;
              p.num_tasks = n;
              p.width = width;
              p.density = density;
              p.regularity = regularity;
              p.jump = jump;
              Rng rng = master.split(base + stream++);
              CorpusEntry entry;
              entry.family = family;
              entry.params = p;
              entry.sample = sample;
              entry.name = random_name(family, p, sample);
              entry.graph = family == DagFamily::Layered
                                ? generate_layered_dag(p, rng)
                                : generate_irregular_dag(p, rng);
              out.push_back(std::move(entry));
            }
}

void build_fft_family(const CorpusOptions& options,
                      std::vector<CorpusEntry>& out) {
  const Rng master(options.seed);
  std::uint64_t stream = 0;
  for (int k : kFftPoints)
    for (int sample = 0; sample < options.kernel_samples; ++sample) {
      Rng rng = master.split(kStreamFft + stream++);
      CorpusEntry entry;
      entry.family = DagFamily::FFT;
      entry.fft_k = k;
      entry.sample = sample;
      entry.name = "fft/k" + std::to_string(k) + "/s" + std::to_string(sample);
      entry.graph = generate_fft_dag(k, rng);
      out.push_back(std::move(entry));
    }
}

void build_strassen_family(const CorpusOptions& options,
                           std::vector<CorpusEntry>& out) {
  const Rng master(options.seed);
  for (int sample = 0; sample < options.kernel_samples; ++sample) {
    Rng rng = master.split(kStreamStrassen + static_cast<std::uint64_t>(sample));
    CorpusEntry entry;
    entry.family = DagFamily::Strassen;
    entry.sample = sample;
    entry.name = "strassen/s" + std::to_string(sample);
    entry.graph = generate_strassen_dag(rng);
    out.push_back(std::move(entry));
  }
}

}  // namespace

std::vector<CorpusEntry> build_family(DagFamily family,
                                      const CorpusOptions& options) {
  std::vector<CorpusEntry> out;
  switch (family) {
    case DagFamily::Layered:
    case DagFamily::Irregular:
      build_random_family(family, options, out);
      break;
    case DagFamily::FFT:
      build_fft_family(options, out);
      break;
    case DagFamily::Strassen:
      build_strassen_family(options, out);
      break;
  }
  return out;
}

std::vector<CorpusEntry> build_corpus(const CorpusOptions& options) {
  std::vector<CorpusEntry> out;
  for (DagFamily family : {DagFamily::Layered, DagFamily::Irregular,
                           DagFamily::FFT, DagFamily::Strassen}) {
    auto part = build_family(family, options);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace rats
