#include "daggen/kernels.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace rats {

namespace {
int ilog2(int k) {
  int log = 0;
  while ((1 << log) < k) ++log;
  return log;
}
}  // namespace

int fft_task_count(int k) { return 2 * k - 1 + k * ilog2(k); }

TaskGraph generate_fft_dag(int k, Rng& rng, const CostRanges& costs) {
  RATS_REQUIRE(k >= 2 && (k & (k - 1)) == 0, "k must be a power of two >= 2");
  const int stages = ilog2(k);
  TaskGraph g;

  // One cost draw per level keeps every path critical.
  auto level_cost = [&] { return draw_cost(rng, costs); };

  // Recursive-call tree: tree level d holds 2^d tasks.
  std::vector<std::vector<TaskId>> tree(static_cast<std::size_t>(stages) + 1);
  for (int d = 0; d <= stages; ++d) {
    const TaskCost cost = level_cost();
    for (int i = 0; i < (1 << d); ++i)
      tree[static_cast<std::size_t>(d)].push_back(
          g.add_task("rec" + std::to_string(d) + "." + std::to_string(i),
                     cost.m, cost.a, cost.alpha));
    if (d > 0) {
      for (int i = 0; i < (1 << d); ++i) {
        const TaskId parent = tree[static_cast<std::size_t>(d - 1)]
                                  [static_cast<std::size_t>(i / 2)];
        g.add_edge(parent, tree[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)],
                   edge_bytes_for(g.task(parent).data_elems));
      }
    }
  }

  // Butterfly stages: stage s task i depends on stage s-1 tasks i and
  // i XOR 2^(s-1); the k tree leaves play the role of stage 0.
  std::vector<TaskId> prev = tree[static_cast<std::size_t>(stages)];
  for (int s = 1; s <= stages; ++s) {
    const TaskCost cost = level_cost();
    std::vector<TaskId> stage;
    stage.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      stage.push_back(g.add_task(
          "bfly" + std::to_string(s) + "." + std::to_string(i), cost.m,
          cost.a, cost.alpha));
    for (int i = 0; i < k; ++i) {
      const TaskId a = prev[static_cast<std::size_t>(i)];
      const TaskId b = prev[static_cast<std::size_t>(i ^ (1 << (s - 1)))];
      g.add_edge(a, stage[static_cast<std::size_t>(i)],
                 edge_bytes_for(g.task(a).data_elems));
      g.add_edge(b, stage[static_cast<std::size_t>(i)],
                 edge_bytes_for(g.task(b).data_elems));
    }
    prev = std::move(stage);
  }

  RATS_REQUIRE(g.num_tasks() == fft_task_count(k), "FFT task count mismatch");
  return g;
}

int strassen_task_count() { return 25; }

TaskGraph generate_strassen_dag(Rng& rng, const CostRanges& costs) {
  TaskGraph g;

  // Level 0: the ten quadrant additions S1..S10 — all entry tasks.
  const TaskCost s_cost = draw_cost(rng, costs);
  std::vector<TaskId> S;
  for (int i = 1; i <= 10; ++i)
    S.push_back(g.add_task("S" + std::to_string(i), s_cost.m, s_cost.a,
                           s_cost.alpha));
  auto s = [&](int i) { return S[static_cast<std::size_t>(i - 1)]; };

  // Level 1: the seven recursive multiplications.
  //   M1 = S1*S2, M2 = S3*B11, M3 = A11*S4, M4 = A22*S5, M5 = S6*B22,
  //   M6 = S7*S8, M7 = S9*S10  (quadrants of A/B that feed an M
  //   directly are charged to the corresponding S entry task).
  const TaskCost m_cost = draw_cost(rng, costs);
  std::vector<TaskId> M;
  for (int i = 1; i <= 7; ++i)
    M.push_back(g.add_task("M" + std::to_string(i), m_cost.m, m_cost.a,
                           m_cost.alpha));
  auto m = [&](int i) { return M[static_cast<std::size_t>(i - 1)]; };
  const std::vector<std::vector<int>> m_parents = {
      {1, 2}, {3}, {4}, {5}, {6}, {7, 8}, {9, 10}};
  for (int i = 1; i <= 7; ++i)
    for (int p : m_parents[static_cast<std::size_t>(i - 1)])
      g.add_edge(s(p), m(i), edge_bytes_for(g.task(s(p)).data_elems));

  // Levels 2..4: eight chained additions forming the result quadrants.
  //   C11 = ((M1 + M4) - M5) + M7          -> 3 tasks
  //   C12 = M3 + M5                        -> 1 task
  //   C21 = M2 + M4                        -> 1 task
  //   C22 = ((M1 + M3) - M2) + M6          -> 3 tasks
  const TaskCost a2 = draw_cost(rng, costs);
  const TaskCost a3 = draw_cost(rng, costs);
  const TaskCost a4 = draw_cost(rng, costs);
  auto add_task = [&](const std::string& name, const TaskCost& c) {
    return g.add_task(name, c.m, c.a, c.alpha);
  };
  auto link = [&](TaskId src, TaskId dst) {
    g.add_edge(src, dst, edge_bytes_for(g.task(src).data_elems));
  };

  const TaskId c11a = add_task("C11.add1", a2);
  link(m(1), c11a);
  link(m(4), c11a);
  const TaskId c11b = add_task("C11.add2", a3);
  link(c11a, c11b);
  link(m(5), c11b);
  const TaskId c11c = add_task("C11.add3", a4);
  link(c11b, c11c);
  link(m(7), c11c);

  const TaskId c12 = add_task("C12.add1", a2);
  link(m(3), c12);
  link(m(5), c12);

  const TaskId c21 = add_task("C21.add1", a2);
  link(m(2), c21);
  link(m(4), c21);

  const TaskId c22a = add_task("C22.add1", a2);
  link(m(1), c22a);
  link(m(3), c22a);
  const TaskId c22b = add_task("C22.add2", a3);
  link(c22a, c22b);
  link(m(2), c22b);
  const TaskId c22c = add_task("C22.add3", a4);
  link(c22b, c22c);
  link(m(6), c22c);

  RATS_REQUIRE(g.num_tasks() == strassen_task_count(),
               "Strassen task count mismatch");
  return g;
}

}  // namespace rats
