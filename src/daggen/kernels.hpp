// Task graphs of the two HPC kernels used in the evaluation
// (paper Section IV-A): Fast Fourier Transformation and Strassen's
// matrix multiplication.  Shapes are fixed by the algorithms; cost
// parameters are drawn with the same random model as the random DAGs,
// one draw per level so that "computation or communication tasks in a
// given level have the same cost" and every root-to-exit path is a
// critical path.
#pragma once

#include "common/rng.hpp"
#include "daggen/cost_model.hpp"
#include "dag/task_graph.hpp"

namespace rats {

/// FFT task graph for `k` data points (k a power of two in {2,...}).
///
/// Two parts: 2k - 1 recursive-call tasks forming a binary splitting
/// tree rooted at the single entry, and k * log2(k) butterfly tasks in
/// log2(k) stages of k tasks; stage s task i receives from stage s-1
/// tasks i and i XOR 2^(s-1) (the tree leaves feed stage 1).  For
/// k = 2, 4, 8, 16 this yields 5, 15, 39 and 95 tasks, as in the paper.
TaskGraph generate_fft_dag(int k, Rng& rng, const CostRanges& costs = {});

/// Number of tasks of the FFT graph for `k` points: 2k-1 + k*log2(k).
int fft_task_count(int k);

/// Strassen matrix multiplication task graph: 25 tasks.
///
/// 10 entry addition tasks S1..S10 (the quadrant combinations), 7
/// multiplication tasks M1..M7, and 8 chained addition tasks producing
/// the four result quadrants (C11 and C22 need three additions each,
/// C12 and C21 one each).
TaskGraph generate_strassen_dag(Rng& rng, const CostRanges& costs = {});

/// Number of tasks of the Strassen graph (always 25).
int strassen_task_count();

}  // namespace rats
