#include "daggen/cost_model.hpp"

namespace rats {

TaskCost draw_cost(Rng& rng, const CostRanges& ranges) {
  TaskCost c;
  c.m = rng.uniform(ranges.m_min, ranges.m_max);
  c.a = rng.uniform(ranges.a_min, ranges.a_max);
  c.alpha = rng.uniform(ranges.alpha_min, ranges.alpha_max);
  return c;
}

Bytes edge_bytes_for(double m) { return m * kBytesPerElement; }

}  // namespace rats
