#include "trace/writer.hpp"

#include <ostream>

#include "common/error.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace rats {

TraceWriter::TraceWriter(std::ostream& out, std::string name,
                         std::string kind, std::string spec_text)
    : out_(out),
      name_(std::move(name)),
      kind_(std::move(kind)),
      spec_text_(std::move(spec_text)) {}

void TraceWriter::begin_matrix(std::size_t runs) {
  std::lock_guard<std::mutex> lock(mu_);
  RATS_REQUIRE(!header_written_, "trace matrix announced twice");
  runs_ = runs;
  header_written_ = true;
  out_ << "{\"rats_trace\":2,\"name\":\"" + json_escape(name_) +
              "\",\"kind\":\"" + json_escape(kind_) +
              "\",\"runs\":" + std::to_string(runs) + ",\"spec\":\"" +
              json_escape(spec_text_) + "\"}\n";
}

TraceSink* TraceWriter::begin_run(std::size_t run, const std::string& entry,
                                  const std::string& algo,
                                  const std::string& cluster) {
  std::lock_guard<std::mutex> lock(mu_);
  RATS_REQUIRE(header_written_, "begin_run before begin_matrix");
  RATS_REQUIRE(run < runs_, "run index out of range");
  auto [it, inserted] = pending_.emplace(run, PendingRun{});
  RATS_REQUIRE(inserted, "run began twice");
  it->second.sink = std::make_unique<TraceSink>();
  it->second.meta_line = "{\"run\":" + std::to_string(run) + ",\"entry\":\"" +
                         json_escape(entry) + "\",\"algo\":\"" +
                         json_escape(algo) + "\",\"cluster\":\"" +
                         json_escape(cluster) + "\"}\n";
  return it->second.sink.get();
}

void TraceWriter::end_run(std::size_t run, double makespan) {
  // Between begin_run and end_run the entry belongs to the completing
  // run alone (std::map references are stable across inserts), so the
  // chunk encodes outside the lock — workers never serialize on each
  // other's encoding, only on the ordered flush.
  PendingRun* p = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = pending_.find(run);
    RATS_REQUIRE(it != pending_.end() && !it->second.done && it->second.sink,
                 "end_run without matching begin_run");
    p = &it->second;
  }
  // Encode the chunk now and drop the sink: what waits for in-order
  // flushing is the compact encoded text, not the raw event buffer.
  {
    obs::PhaseTimer span("trace/encode");
    p->encoded = std::move(p->meta_line);
    TraceLineEncoder encoder;
    for (const TraceEvent& event : p->sink->events())
      encoder.append(event, p->encoded);
    p->encoded += "{\"run_end\":" + std::to_string(run) +
                  ",\"events\":" + std::to_string(p->sink->size()) +
                  ",\"makespan\":" + trace_double(makespan) + "}\n";
  }
  const std::size_t events = p->sink->size();
  p->sink.reset();
  total_events_.fetch_add(events, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  p->done = true;
  flush_ready_locked();
}

void TraceWriter::flush_ready_locked() {
  // Registered once; counts are deterministic (chunk sizes depend only
  // on the simulated runs, not on flush interleaving).
  static obs::Counter& chunks = obs::counter("trace/chunks_flushed");
  static obs::Counter& bytes = obs::counter("trace/bytes");
  while (true) {
    const auto it = pending_.find(next_flush_);
    if (it == pending_.end() || !it->second.done) return;
    out_ << it->second.encoded;
    chunks.inc();
    bytes.add(it->second.encoded.size());
    pending_.erase(it);
    ++next_flush_;
  }
}

void TraceWriter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  RATS_REQUIRE(header_written_, "finish before begin_matrix");
  RATS_REQUIRE(pending_.empty() && next_flush_ == runs_,
               "trace finished with unflushed runs");
  out_.flush();
}

}  // namespace rats
