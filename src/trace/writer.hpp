// Streaming JSON-lines trace writer.
//
// TraceWriter serializes an experiment matrix's trace to an ostream
// *while it runs*: the header line goes out when the matrix is
// announced, each run records into its own TraceSink, and at run
// completion the run's chunk (meta line, delta-encoded event lines, end
// line — see trace/trace.hpp for the line formats) is encoded and
// flushed as soon as every earlier run has been flushed.  Runs execute
// in parallel and complete out of order; peak memory is therefore
// bounded by the encoded chunks of completed-but-not-yet-flushable runs
// (in practice a few worker threads' worth), never by the whole trace —
// the property that keeps paper-scale traced runs in bounded memory.
//
// The byte stream is identical for any completion order and any worker
// count, which is what the replay checker (trace/replay.hpp) relies on.
//
// File layout (version 2 — rate records are delta-encoded):
//   {"rats_trace":2,"name":...,"kind":...,"runs":N,"spec":"..."}
//   {"run":0,"entry":...,"algo":...,"cluster":...}
//   <event lines>
//   {"run_end":0,"events":E,"makespan":M}
//   {"run":1,...}
//   ...
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/trace.hpp"

namespace rats {

class TraceWriter {
 public:
  /// Binds the writer to `out` (which must outlive it).  Nothing is
  /// written until begin_matrix announces the run count.
  TraceWriter(std::ostream& out, std::string name, std::string kind,
              std::string spec_text);

  /// Writes the header line.  Must be called exactly once, before any
  /// begin_run.
  void begin_matrix(std::size_t runs);

  /// Registers run `run` and returns its sink (valid until end_run).
  /// Thread-safe.
  TraceSink* begin_run(std::size_t run, const std::string& entry,
                       const std::string& algo, const std::string& cluster);

  /// Encodes run `run`'s chunk, then flushes every chunk whose
  /// predecessors are all flushed.  Thread-safe.
  void end_run(std::size_t run, double makespan);

  /// Verifies every announced run was flushed.  Throws rats::Error on
  /// missing runs (a run that never began or never ended).
  void finish();

  /// Events encoded so far.  Safe to poll while the matrix runs.
  std::size_t total_events() const {
    return total_events_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingRun {
    std::unique_ptr<TraceSink> sink;
    std::string meta_line;  ///< pre-built {"run":...} line
    std::string encoded;    ///< full chunk once the run ended
    bool done = false;
  };

  void flush_ready_locked();

  std::ostream& out_;
  std::string name_, kind_, spec_text_;
  std::size_t runs_ = 0;
  bool header_written_ = false;
  std::size_t next_flush_ = 0;
  std::atomic<std::size_t> total_events_{0};
  std::map<std::size_t, PendingRun> pending_;
  std::mutex mu_;
};

}  // namespace rats
