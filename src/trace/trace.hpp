// Structured simulation tracing (opt-in).
//
// A TraceSink is a flat, append-only buffer of timestamped events that
// the simulator and the fluid network fill while they run: task
// start/finish, redistribution intervals (one per DAG edge), per
// sharing-component Max-Min solve events (with the strategy the solver
// dispatch picked) and every rate assignment.  Recording costs one
// branch when disabled (the default — hot paths check a null pointer)
// and one vector append when enabled.
//
// Because the whole simulation stack is deterministic, the event
// stream is a *replayable fingerprint* of a run: re-simulating the
// same scenario must reproduce it byte for byte.  trace/replay.hpp
// builds a checker on exactly that property.
//
// Exporters: JSON-lines (`trace_event_line`, one self-contained object
// per line, doubles printed with round-trip precision) and a Gantt
// table (`trace_gantt`) that renders the task and redistribution
// intervals of one run as an aligned text table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rats {

enum class TraceEventKind : std::uint8_t {
  TaskStart,       ///< a = task id, b = #procs
  TaskFinish,      ///< a = task id
  RedistStart,     ///< a = edge id, b = #transfers, value = remote bytes
  RedistDone,      ///< a = edge id
  SolveComponent,  ///< a = component id, b = #members, value = strategy
  RateChange,      ///< a = flow id, value = new rate (bytes/s)
  // Platform timeline events (see platform/timeline.hpp).
  LinkCapacity,    ///< a = link id, value = new capacity (bytes/s)
  NodeSlowdown,    ///< a = node id, value = speed factor
  NodeFail,        ///< a = node id
  NodeRestart,     ///< a = node id
  TaskKill,        ///< a = task id, b = failed node
  TaskRemap,       ///< a = task id, b = old proc, value = new proc
  RedistAbort,     ///< a = edge id
};

/// Stable wire name of an event kind ("task_start", "rate_change", ...).
const char* to_string(TraceEventKind kind);

/// Solver-strategy codes carried by SolveComponent events.
enum : std::int32_t {
  kSolveSingleton = 0,  ///< single-flow short-circuit
  kSolveWarm = 1,       ///< warm re-solve over the pending delta
  kSolveBipartite = 2,  ///< cold, bipartite waterfilling fast path
  kSolveGeneral = 3,    ///< cold, general adjacency-sharing solver
};

/// One recorded event.  `a`/`b` are ids/counts per the kind table
/// above; unused fields stay at their defaults.
struct TraceEvent {
  Seconds time{};
  TraceEventKind kind{};
  std::int32_t a = -1;
  std::int32_t b = -1;
  double value = 0;
};

/// Append-only event buffer for one simulation run.
class TraceSink {
 public:
  void record(Seconds time, TraceEventKind kind, std::int32_t a,
              std::int32_t b = -1, double value = 0) {
    events_.push_back(TraceEvent{time, kind, a, b, value});
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// One event as a self-contained JSON-lines object, e.g.
///   {"t":0.10000000000000001,"ev":"task_start","a":3,"b":2,"v":0}
/// Doubles use `trace_double` so parsing the line recovers the exact
/// bits.
std::string trace_event_line(const TraceEvent& event);

/// Stateful delta-encoding line writer for one run's event stream.
///
/// Rate-change records dominate trace size, and their fields repeat
/// heavily: one Max-Min solve assigns many rates at a single timestamp,
/// and fair sharing hands whole components the same rate value.  Rate
/// events therefore encode as
///   {"r":<flow>[,"t":<time>][,"v":<rate>]}
/// with "t"/"v" omitted when bit-identical to the running values (the
/// time of the previous event of any kind; the value of the previous
/// rate event).  Every other kind uses the self-contained
/// trace_event_line form.  TraceLineDecoder reverses the encoding
/// exactly — encode→decode round-trips every event bit for bit, which
/// is what keeps the replay checker byte-exact on the decoded stream.
/// State is per run: reset both sides at each run boundary.
class TraceLineEncoder {
 public:
  void reset();
  /// Appends the encoded line for `event`, newline included.
  void append(const TraceEvent& event, std::string& out);

 private:
  bool have_time_ = false;
  bool have_rate_ = false;
  double time_ = 0;
  double rate_ = 0;
};

/// Reverses TraceLineEncoder (see above).
class TraceLineDecoder {
 public:
  void reset();
  /// Decodes one line (no trailing newline) into `out`; returns false
  /// on malformed input.
  bool decode(const std::string& line, TraceEvent& out);

 private:
  bool have_time_ = false;
  bool have_rate_ = false;
  double time_ = 0;
  double rate_ = 0;
};

/// Round-trip double formatting (%.17g) shared by every trace field —
/// writer and replay checker must agree byte for byte, so this is the
/// only double formatter trace files go through.
std::string trace_double(double value);

/// JSON string escaping for the writer/header helpers (escapes
/// backslash, quote, and control characters incl. newlines).
std::string json_escape(const std::string& text);

/// Renders the task and redistribution intervals of an event stream as
/// an aligned Gantt-style table sorted by interval start (tasks first
/// on ties).  `task_names`, when given, must cover every task id in
/// the stream.
std::string trace_gantt(const std::vector<TraceEvent>& events,
                        const std::vector<std::string>* task_names = nullptr);

}  // namespace rats
