// gzip support for the v2 trace stream (`[output] trace-gzip = true`).
//
// The trace format stays byte-identical — gzip wraps the finished
// stream, so a reader inflates and then sees exactly the bytes the
// plain sink would have written (the round-trip tests pin this
// bit-exactly).  trace/replay.cpp auto-detects the two-byte gzip magic
// and inflates before verification, so `rats replay` works on either
// form of a trace without a flag.
//
// zlib is optional at build time (RATS_HAVE_ZLIB from CMake's
// find_package(ZLIB)); without it `gzip_available()` is false and the
// other entry points throw rats::Error, so a spec asking for trace-gzip
// fails loudly instead of writing a mislabelled artefact.
#pragma once

#include <memory>
#include <ostream>
#include <string>

namespace rats {

/// True when this build can compress (zlib was found at configure
/// time).  Decompression has the same availability.
bool gzip_available();

/// True when `bytes` starts with the gzip magic (1f 8b).
bool gzip_is_compressed(const std::string& bytes);

/// One-shot gzip round trip.  Both throw rats::Error when zlib is
/// unavailable or the payload is corrupt.
std::string gzip_compress(const std::string& bytes);
std::string gzip_decompress(const std::string& bytes);

/// Streaming gzip sink: everything written to `stream()` is deflated
/// into the inner ostream.  Call `finish()` exactly once after the last
/// write to flush the gzip trailer; the destructor finishes as a
/// safety net but cannot report errors, so explicit callers should
/// finish themselves.
class GzipOstream {
 public:
  explicit GzipOstream(std::ostream& inner);
  ~GzipOstream();
  GzipOstream(const GzipOstream&) = delete;
  GzipOstream& operator=(const GzipOstream&) = delete;

  std::ostream& stream();
  void finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rats
