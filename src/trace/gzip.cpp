#include "trace/gzip.hpp"

#include <cstring>
#include <streambuf>

#include "common/error.hpp"

#if defined(RATS_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace rats {

bool gzip_is_compressed(const std::string& bytes) {
  return bytes.size() >= 2 && static_cast<unsigned char>(bytes[0]) == 0x1f &&
         static_cast<unsigned char>(bytes[1]) == 0x8b;
}

#if defined(RATS_HAVE_ZLIB)

namespace {
// windowBits 15 + 16 selects the gzip wrapper (RFC 1952) rather than
// raw deflate or zlib framing.
constexpr int kGzipWindowBits = 15 + 16;
constexpr std::size_t kChunk = 64 * 1024;
}  // namespace

bool gzip_available() { return true; }

std::string gzip_compress(const std::string& bytes) {
  z_stream zs;
  std::memset(&zs, 0, sizeof zs);
  RATS_REQUIRE(deflateInit2(&zs, Z_DEFAULT_COMPRESSION, Z_DEFLATED,
                            kGzipWindowBits, 8,
                            Z_DEFAULT_STRATEGY) == Z_OK,
               "deflateInit2 failed");
  std::string out;
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(bytes.data()));
  zs.avail_in = static_cast<uInt>(bytes.size());
  char buf[kChunk];
  int rc = Z_OK;
  do {
    zs.next_out = reinterpret_cast<Bytef*>(buf);
    zs.avail_out = sizeof buf;
    rc = deflate(&zs, Z_FINISH);
    out.append(buf, sizeof buf - zs.avail_out);
  } while (rc == Z_OK);
  deflateEnd(&zs);
  RATS_REQUIRE(rc == Z_STREAM_END, "gzip compression failed");
  return out;
}

std::string gzip_decompress(const std::string& bytes) {
  z_stream zs;
  std::memset(&zs, 0, sizeof zs);
  RATS_REQUIRE(inflateInit2(&zs, kGzipWindowBits) == Z_OK,
               "inflateInit2 failed");
  std::string out;
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(bytes.data()));
  zs.avail_in = static_cast<uInt>(bytes.size());
  char buf[kChunk];
  int rc = Z_OK;
  do {
    zs.next_out = reinterpret_cast<Bytef*>(buf);
    zs.avail_out = sizeof buf;
    rc = inflate(&zs, Z_NO_FLUSH);
    if (rc != Z_OK && rc != Z_STREAM_END) break;
    out.append(buf, sizeof buf - zs.avail_out);
  } while (rc == Z_OK && (zs.avail_in > 0 || zs.avail_out == 0));
  inflateEnd(&zs);
  RATS_REQUIRE(rc == Z_STREAM_END, "corrupt gzip stream");
  return out;
}

namespace {

/// streambuf deflating everything it receives into an inner ostream.
class GzipBuf final : public std::streambuf {
 public:
  explicit GzipBuf(std::ostream& inner) : inner_(inner) {
    std::memset(&zs_, 0, sizeof zs_);
    RATS_REQUIRE(deflateInit2(&zs_, Z_DEFAULT_COMPRESSION, Z_DEFLATED,
                              kGzipWindowBits, 8,
                              Z_DEFAULT_STRATEGY) == Z_OK,
                 "deflateInit2 failed");
    setp(in_, in_ + sizeof in_);
  }

  ~GzipBuf() override {
    if (!finished_) {
      try {
        finish();
      } catch (...) {
        // Destructor safety net only; explicit finish() reports errors.
      }
    }
    deflateEnd(&zs_);
  }

  void finish() {
    if (finished_) return;
    drain(Z_FINISH);
    finished_ = true;
    inner_.flush();
    RATS_REQUIRE(inner_.good(), "gzip sink: inner stream write failed");
  }

 protected:
  int overflow(int ch) override {
    drain(Z_NO_FLUSH);
    if (ch != traits_type::eof()) {
      *pptr() = static_cast<char>(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    drain(Z_NO_FLUSH);
    return inner_.good() ? 0 : -1;
  }

 private:
  void drain(int flush) {
    zs_.next_in = reinterpret_cast<Bytef*>(in_);
    zs_.avail_in = static_cast<uInt>(pptr() - pbase());
    int rc = Z_OK;
    do {
      zs_.next_out = reinterpret_cast<Bytef*>(out_);
      zs_.avail_out = sizeof out_;
      rc = deflate(&zs_, flush);
      RATS_REQUIRE(rc == Z_OK || rc == Z_STREAM_END || rc == Z_BUF_ERROR,
                   "gzip sink: deflate failed");
      inner_.write(out_, static_cast<std::streamsize>(sizeof out_ -
                                                      zs_.avail_out));
    } while (zs_.avail_out == 0 || (flush == Z_FINISH && rc == Z_OK));
    setp(in_, in_ + sizeof in_);
  }

  std::ostream& inner_;
  z_stream zs_;
  char in_[kChunk];
  char out_[kChunk];
  bool finished_ = false;
};

}  // namespace

struct GzipOstream::Impl {
  explicit Impl(std::ostream& inner) : buf(inner), stream(&buf) {}
  GzipBuf buf;
  std::ostream stream;
};

GzipOstream::GzipOstream(std::ostream& inner)
    : impl_(std::make_unique<Impl>(inner)) {}
GzipOstream::~GzipOstream() = default;
std::ostream& GzipOstream::stream() { return impl_->stream; }
void GzipOstream::finish() {
  impl_->stream.flush();
  impl_->buf.finish();
}

#else  // !RATS_HAVE_ZLIB

namespace {
[[noreturn]] void unavailable() {
  throw Error(
      "trace-gzip requires zlib, which this build was configured without");
}
}  // namespace

bool gzip_available() { return false; }
std::string gzip_compress(const std::string&) { unavailable(); }
std::string gzip_decompress(const std::string&) { unavailable(); }

struct GzipOstream::Impl {};
GzipOstream::GzipOstream(std::ostream&) { unavailable(); }
GzipOstream::~GzipOstream() = default;
std::ostream& GzipOstream::stream() { unavailable(); }
void GzipOstream::finish() { unavailable(); }

#endif

}  // namespace rats
