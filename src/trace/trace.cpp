#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/table.hpp"

namespace rats {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::TaskStart: return "task_start";
    case TraceEventKind::TaskFinish: return "task_finish";
    case TraceEventKind::RedistStart: return "redist_start";
    case TraceEventKind::RedistDone: return "redist_done";
    case TraceEventKind::SolveComponent: return "solve";
    case TraceEventKind::RateChange: return "rate";
  }
  return "?";
}

std::string trace_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string trace_event_line(const TraceEvent& event) {
  std::string line = "{\"t\":" + trace_double(event.time);
  line += ",\"ev\":\"";
  line += to_string(event.kind);
  line += "\",\"a\":" + std::to_string(event.a);
  line += ",\"b\":" + std::to_string(event.b);
  line += ",\"v\":" + trace_double(event.value) + "}";
  return line;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string trace_gantt(const std::vector<TraceEvent>& events,
                        const std::vector<std::string>* task_names) {
  struct Interval {
    bool task;        ///< task interval (else redistribution)
    std::int32_t id;
    Seconds start;
    Seconds finish;
    bool closed = false;
  };
  std::vector<Interval> intervals;
  // Open-interval lookup: (task, id) -> index.  Streams are small and
  // ids dense per run, so a linear scan from the back (intervals close
  // roughly in the order they open) is plenty.
  auto open_index = [&](bool task, std::int32_t id) -> Interval* {
    for (auto it = intervals.rbegin(); it != intervals.rend(); ++it)
      if (it->task == task && it->id == id && !it->closed) return &*it;
    return nullptr;
  };
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::TaskStart:
        intervals.push_back(Interval{true, e.a, e.time, e.time});
        break;
      case TraceEventKind::RedistStart:
        intervals.push_back(Interval{false, e.a, e.time, e.time});
        break;
      case TraceEventKind::TaskFinish:
      case TraceEventKind::RedistDone: {
        Interval* open =
            open_index(e.kind == TraceEventKind::TaskFinish, e.a);
        RATS_REQUIRE(open != nullptr, "trace closes an interval it never opened");
        open->finish = e.time;
        open->closed = true;
        break;
      }
      default:
        break;  // solver/rate events carry no interval
    }
  }
  std::stable_sort(intervals.begin(), intervals.end(),
                   [](const Interval& a, const Interval& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.task > b.task;
                   });
  Table table({"interval", "start", "finish", "duration"});
  for (const Interval& iv : intervals) {
    std::string label;
    if (iv.task) {
      label = task_names != nullptr
                  ? (*task_names)[static_cast<std::size_t>(iv.id)]
                  : "task " + std::to_string(iv.id);
    } else {
      label = "edge " + std::to_string(iv.id);
    }
    table.add_row({label, fmt(iv.start, 3), fmt(iv.finish, 3),
                   fmt(iv.finish - iv.start, 3)});
  }
  return table.to_text();
}

}  // namespace rats
