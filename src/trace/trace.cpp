#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/table.hpp"

namespace rats {

namespace {

/// Bit equality (== would conflate +0/-0 and the formatter would not).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::TaskStart: return "task_start";
    case TraceEventKind::TaskFinish: return "task_finish";
    case TraceEventKind::RedistStart: return "redist_start";
    case TraceEventKind::RedistDone: return "redist_done";
    case TraceEventKind::SolveComponent: return "solve";
    case TraceEventKind::RateChange: return "rate";
    case TraceEventKind::LinkCapacity: return "link_cap";
    case TraceEventKind::NodeSlowdown: return "node_slow";
    case TraceEventKind::NodeFail: return "node_fail";
    case TraceEventKind::NodeRestart: return "node_restart";
    case TraceEventKind::TaskKill: return "task_kill";
    case TraceEventKind::TaskRemap: return "task_remap";
    case TraceEventKind::RedistAbort: return "redist_abort";
  }
  return "?";
}

std::string trace_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string trace_event_line(const TraceEvent& event) {
  std::string line = "{\"t\":" + trace_double(event.time);
  line += ",\"ev\":\"";
  line += to_string(event.kind);
  line += "\",\"a\":" + std::to_string(event.a);
  line += ",\"b\":" + std::to_string(event.b);
  line += ",\"v\":" + trace_double(event.value) + "}";
  return line;
}

void TraceLineEncoder::reset() {
  have_time_ = false;
  have_rate_ = false;
  time_ = 0;
  rate_ = 0;
}

void TraceLineEncoder::append(const TraceEvent& event, std::string& out) {
  if (event.kind != TraceEventKind::RateChange) {
    out += trace_event_line(event);
    out += '\n';
    time_ = event.time;
    have_time_ = true;
    return;
  }
  out += "{\"r\":" + std::to_string(event.a);
  if (!have_time_ || !same_bits(event.time, time_)) {
    out += ",\"t\":" + trace_double(event.time);
    time_ = event.time;
    have_time_ = true;
  }
  if (!have_rate_ || !same_bits(event.value, rate_)) {
    out += ",\"v\":" + trace_double(event.value);
    rate_ = event.value;
    have_rate_ = true;
  }
  out += "}\n";
}

void TraceLineDecoder::reset() {
  have_time_ = false;
  have_rate_ = false;
  time_ = 0;
  rate_ = 0;
}

namespace {

/// Parses `"key":` at `at` followed by a number; advances `at` past it.
bool parse_number_field(const std::string& line, const char* key,
                        std::size_t& at, double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  if (line.compare(at, needle.size(), needle) != 0) return false;
  at += needle.size();
  const char* start = line.c_str() + at;
  char* end = nullptr;
  out = std::strtod(start, &end);
  if (end == start) return false;
  at += static_cast<std::size_t>(end - start);
  return true;
}

TraceEventKind kind_from_string(const std::string& name, bool& ok) {
  ok = true;
  if (name == "task_start") return TraceEventKind::TaskStart;
  if (name == "task_finish") return TraceEventKind::TaskFinish;
  if (name == "redist_start") return TraceEventKind::RedistStart;
  if (name == "redist_done") return TraceEventKind::RedistDone;
  if (name == "solve") return TraceEventKind::SolveComponent;
  if (name == "rate") return TraceEventKind::RateChange;
  if (name == "link_cap") return TraceEventKind::LinkCapacity;
  if (name == "node_slow") return TraceEventKind::NodeSlowdown;
  if (name == "node_fail") return TraceEventKind::NodeFail;
  if (name == "node_restart") return TraceEventKind::NodeRestart;
  if (name == "task_kill") return TraceEventKind::TaskKill;
  if (name == "task_remap") return TraceEventKind::TaskRemap;
  if (name == "redist_abort") return TraceEventKind::RedistAbort;
  ok = false;
  return TraceEventKind::TaskStart;
}

}  // namespace

bool TraceLineDecoder::decode(const std::string& line, TraceEvent& out) {
  out = TraceEvent{};
  if (line.rfind("{\"r\":", 0) == 0) {
    // Delta-encoded rate change: inherit time/value unless present.
    std::size_t at = 1;  // at the `"r"` key
    double flow = 0;
    if (!parse_number_field(line, "r", at, flow)) return false;
    out.kind = TraceEventKind::RateChange;
    out.a = static_cast<std::int32_t>(flow);
    out.b = -1;
    // Parse into locals and commit to the inherited state only once the
    // whole line is accepted — a rejected line must not corrupt what
    // later lines inherit.
    double time = 0, rate = 0;
    bool line_has_time = false, line_has_rate = false;
    if (at < line.size() && line[at] == ',') {
      std::size_t try_at = at + 1;
      if (parse_number_field(line, "t", try_at, time)) {
        line_has_time = true;
        at = try_at;
      }
    }
    if (at < line.size() && line[at] == ',') {
      std::size_t try_at = at + 1;
      if (parse_number_field(line, "v", try_at, rate)) {
        line_has_rate = true;
        at = try_at;
      }
    }
    if (line.compare(at, std::string::npos, "}") != 0) return false;
    if ((!line_has_time && !have_time_) || (!line_has_rate && !have_rate_))
      return false;  // nothing to inherit
    if (line_has_time) {
      time_ = time;
      have_time_ = true;
    }
    if (line_has_rate) {
      rate_ = rate;
      have_rate_ = true;
    }
    out.time = time_;
    out.value = rate_;
    return true;
  }

  // Self-contained form: {"t":..,"ev":"..","a":..,"b":..,"v":..}
  if (line.rfind("{\"t\":", 0) != 0) return false;
  std::size_t at = 1;
  double time = 0;
  if (!parse_number_field(line, "t", at, time)) return false;
  const std::string ev_needle = ",\"ev\":\"";
  if (line.compare(at, ev_needle.size(), ev_needle) != 0) return false;
  at += ev_needle.size();
  const std::size_t name_end = line.find('"', at);
  if (name_end == std::string::npos) return false;
  bool ok = false;
  out.kind = kind_from_string(line.substr(at, name_end - at), ok);
  if (!ok) return false;
  at = name_end + 1;
  double a = 0, b = 0, v = 0;
  if (line.compare(at, 1, ",") != 0) return false;
  ++at;
  if (!parse_number_field(line, "a", at, a)) return false;
  if (line.compare(at, 1, ",") != 0) return false;
  ++at;
  if (!parse_number_field(line, "b", at, b)) return false;
  if (line.compare(at, 1, ",") != 0) return false;
  ++at;
  if (!parse_number_field(line, "v", at, v)) return false;
  if (line.compare(at, std::string::npos, "}") != 0) return false;
  out.time = time;
  out.a = static_cast<std::int32_t>(a);
  out.b = static_cast<std::int32_t>(b);
  out.value = v;
  time_ = time;
  have_time_ = true;
  if (out.kind == TraceEventKind::RateChange) {
    rate_ = v;
    have_rate_ = true;
  }
  return true;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string trace_gantt(const std::vector<TraceEvent>& events,
                        const std::vector<std::string>* task_names) {
  struct Interval {
    bool task;        ///< task interval (else redistribution)
    std::int32_t id;
    Seconds start;
    Seconds finish;
    bool closed = false;
  };
  std::vector<Interval> intervals;
  // Open-interval lookup: (task, id) -> index.  Streams are small and
  // ids dense per run, so a linear scan from the back (intervals close
  // roughly in the order they open) is plenty.
  auto open_index = [&](bool task, std::int32_t id) -> Interval* {
    for (auto it = intervals.rbegin(); it != intervals.rend(); ++it)
      if (it->task == task && it->id == id && !it->closed) return &*it;
    return nullptr;
  };
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::TaskStart:
        intervals.push_back(Interval{true, e.a, e.time, e.time});
        break;
      case TraceEventKind::RedistStart:
        intervals.push_back(Interval{false, e.a, e.time, e.time});
        break;
      case TraceEventKind::TaskFinish:
      case TraceEventKind::TaskKill:
      case TraceEventKind::RedistDone:
      case TraceEventKind::RedistAbort: {
        // A kill/abort truncates the interval it interrupts.
        Interval* open =
            open_index(e.kind == TraceEventKind::TaskFinish ||
                           e.kind == TraceEventKind::TaskKill,
                       e.a);
        RATS_REQUIRE(open != nullptr, "trace closes an interval it never opened");
        open->finish = e.time;
        open->closed = true;
        break;
      }
      default:
        break;  // solver/rate events carry no interval
    }
  }
  std::stable_sort(intervals.begin(), intervals.end(),
                   [](const Interval& a, const Interval& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.task > b.task;
                   });
  Table table({"interval", "start", "finish", "duration"});
  for (const Interval& iv : intervals) {
    std::string label;
    if (iv.task) {
      label = task_names != nullptr
                  ? (*task_names)[static_cast<std::size_t>(iv.id)]
                  : "task " + std::to_string(iv.id);
    } else {
      label = "edge " + std::to_string(iv.id);
    }
    table.add_row({label, fmt(iv.start, 3), fmt(iv.finish, 3),
                   fmt(iv.finish - iv.start, 3)});
  }
  return table.to_text();
}

}  // namespace rats
