#include "trace/replay.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "trace/gzip.hpp"

namespace rats {

namespace {

/// Extracts the value of a `"key":"..."` string field from a JSON
/// object line written by the trace renderer, undoing its escaping.
/// Returns false when the key is absent.
bool extract_string_field(const std::string& line, const std::string& key,
                          std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  out.clear();
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) return false;
      const char next = line[++i];
      if (next == 'n') out += '\n';
      else if (next == 't') out += '\t';
      else if (next == 'r') out += '\r';
      else if (next == 'u') {
        // json_escape writes other control characters as \u00XX.
        if (i + 4 >= line.size()) return false;
        unsigned code = 0;
        for (int d = 0; d < 4; ++d) {
          const char h = line[++i];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (code > 0x7f) return false;  // the writer only escapes ASCII
        out += static_cast<char>(code);
      } else out += next;  // \" and \\ (and any future passthrough)
    } else if (c == '"') {
      return true;
    } else {
      out += c;
    }
  }
  return false;  // unterminated
}

/// First line of `text` starting at `pos` (without the newline).
std::string line_at(const std::string& text, std::size_t pos) {
  const std::size_t end = text.find('\n', pos);
  return text.substr(pos, end == std::string::npos ? std::string::npos
                                                   : end - pos);
}

std::string truncate(std::string s, std::size_t limit = 160) {
  if (s.size() > limit) s = s.substr(0, limit) + "...";
  return s;
}

}  // namespace

ReplayReport verify_trace(const std::string& path, unsigned threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ReplayReport report;
    report.error = "cannot open trace file '" + path + "'";
    return report;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  // Traces written with `trace-gzip = true` inflate to the exact bytes
  // of the plain stream, so verification proceeds unchanged.
  if (gzip_is_compressed(bytes)) {
    try {
      bytes = gzip_decompress(bytes);
    } catch (const Error& e) {
      ReplayReport report;
      report.error = path + ": " + e.what();
      return report;
    }
  }
  return verify_trace_text(bytes, path, threads);
}

ReplayReport verify_trace_text(const std::string& actual,
                               const std::string& path, unsigned threads) {
  ReplayReport report;
  const std::string header = line_at(actual, 0);
  if (header.rfind("{\"rats_trace\":2,", 0) != 0) {
    report.error =
        header.rfind("{\"rats_trace\":", 0) == 0
            ? path + ":1: unsupported trace version (this build reads v2)"
            : path + ":1: not a RATS trace (header line missing)";
    return report;
  }
  std::string spec_text;
  if (!extract_string_field(header, "spec", spec_text)) {
    report.error = path + ":1: header has no embedded scenario spec";
    return report;
  }

  std::string expected;
  try {
    const scenario::ScenarioSpec spec =
        scenario::parse_scenario_string(spec_text, path + ":<header spec>");
    expected = scenario::render_trace(spec, threads);
  } catch (const Error& e) {
    report.error = std::string("replay failed: ") + e.what();
    return report;
  }

  // Byte-diff, reported line by line.  (A line consumes its newline;
  // a final line without one pushes the position one past the end,
  // which the bounds checks below must run before any further
  // line_at.)
  std::size_t line_no = 1, pos_a = 0, pos_e = 0;
  while (pos_a < actual.size() || pos_e < expected.size()) {
    if (pos_a >= actual.size()) {
      report.error = path + ":" + std::to_string(line_no) +
                     ": trace ends early; replay expects: " +
                     truncate(line_at(expected, pos_e));
      return report;
    }
    if (pos_e >= expected.size()) {
      report.error = path + ":" + std::to_string(line_no) +
                     ": trailing content after the replayed stream: " +
                     truncate(line_at(actual, pos_a));
      return report;
    }
    const std::string line_actual = line_at(actual, pos_a);
    const std::string line_expected = line_at(expected, pos_e);
    if (line_actual != line_expected) {
      report.error = path + ":" + std::to_string(line_no) +
                     ": trace diverges from replay\n  trace:  " +
                     truncate(line_actual) +
                     "\n  replay: " + truncate(line_expected);
      return report;
    }
    if (line_actual.rfind("{\"run\":", 0) == 0) ++report.runs;
    else if (line_actual.rfind("{\"t\":", 0) == 0 ||
             line_actual.rfind("{\"r\":", 0) == 0)
      ++report.events;
    pos_a += line_actual.size() + 1;
    pos_e += line_expected.size() + 1;
    ++line_no;
  }
  report.ok = true;
  return report;
}

}  // namespace rats
