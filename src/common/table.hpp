// Text tables and CSV emission for the benchmark harness.
//
// Every table/figure binary prints (a) an aligned human-readable table
// mirroring the paper's layout and (b) optionally machine-readable CSV
// for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rats {

/// A simple column-aligned table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with padded columns, a header underline and `indent` spaces
  /// of left margin.
  std::string to_text(int indent = 2) const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline
  /// are quoted, embedded quotes doubled).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string fmt(double value, int digits = 3);

/// Formats a double as a percentage string, e.g. 0.125 -> "12.5%".
std::string fmt_percent(double fraction, int digits = 1);

}  // namespace rats
