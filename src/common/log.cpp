#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace rats {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[rats %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace rats
