// printf-style formatting into std::string.
//
// The report pipeline captures every line the legacy binaries printed
// with std::printf into structured models, so the exact byte sequences
// must be reproducible; routing both through vsnprintf guarantees that.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "common/error.hpp"

namespace rats {

/// va_list core shared by strf and ReportModel::textf.  Consumes
/// `args` (the caller still owns the va_end).
inline std::string vstrf(const char* fmt, va_list args) {
  va_list probe;
  va_copy(probe, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, probe);
  va_end(probe);
  RATS_REQUIRE(n >= 0, "vsnprintf failed");
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vstrf(fmt, args);
  va_end(args);
  return out;
}

}  // namespace rats
