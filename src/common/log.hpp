// Minimal leveled logger.
//
// The simulator and schedulers are silent by default; set the level to
// Debug to trace scheduling decisions and simulated events.  A global
// level keeps hot paths branch-cheap (one enum compare).
#pragma once

#include <sstream>
#include <string>

namespace rats {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the process-wide log level (default: Warn).
LogLevel log_level() noexcept;

/// Sets the process-wide log level.
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace rats

#define RATS_LOG(level, expr)                                    \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::rats::log_level())) {                 \
      std::ostringstream rats_log_stream_;                       \
      rats_log_stream_ << expr;                                  \
      ::rats::detail::log_emit(level, rats_log_stream_.str());   \
    }                                                            \
  } while (0)

#define RATS_DEBUG(expr) RATS_LOG(::rats::LogLevel::Debug, expr)
#define RATS_INFO(expr) RATS_LOG(::rats::LogLevel::Info, expr)
#define RATS_WARN(expr) RATS_LOG(::rats::LogLevel::Warn, expr)
