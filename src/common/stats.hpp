// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace rats {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics (the "inclusive" / type-7 method).  `q` in [0, 1].
/// The input vector is copied; prefer `percentile_inplace` in hot paths.
double percentile(std::vector<double> xs, double q);

/// As `percentile` but sorts `xs` in place (no copy).
double percentile_inplace(std::vector<double>& xs, double q);

/// Arithmetic mean of a sample; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Geometric mean; requires strictly positive samples.
double geometric_mean(const std::vector<double>& xs);

}  // namespace rats
