// Error handling for the RATS library.
//
// All precondition violations throw rats::Error (derived from
// std::runtime_error) so that misuse of the public API is diagnosable
// rather than undefined behaviour.  Internal invariants use the same
// mechanism: simulation code is deterministic, so a violated invariant
// is always a bug worth surfacing loudly.
#pragma once

#include <stdexcept>
#include <string>

namespace rats {

/// Exception type thrown on precondition or invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::string full = std::string(file) + ":" + std::to_string(line) +
                     ": requirement failed: " + expr;
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace rats

/// Check a precondition/invariant; throws rats::Error when violated.
#define RATS_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) ::rats::detail::raise(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
