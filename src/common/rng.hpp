// Deterministic, splittable random number generation.
//
// Every stochastic element of the reproduction (DAG shapes, task costs,
// Amdahl fractions) is derived from a single experiment seed so that
// the whole 557-configuration corpus of the paper is reproducible
// bit-for-bit across runs and platforms.  The generator is
// xoshiro256** seeded through splitmix64, both public-domain
// algorithms with well-studied statistical quality.
#pragma once

#include <cstdint>
#include <limits>

namespace rats {

/// xoshiro256** pseudo random generator with splitmix64 seeding.
///
/// Satisfies the UniformRandomBitGenerator concept, but we provide the
/// distribution helpers used by the library directly so results do not
/// depend on the standard library's (implementation-defined)
/// std::uniform_*_distribution algorithms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEE) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability `p` of returning true.
  bool bernoulli(double p) noexcept;

  /// Derive an independent child generator.  Mixing `stream` into the
  /// state gives reproducible per-purpose sub-streams: the corpus
  /// generator hands each DAG its own stream so adding a DAG type never
  /// perturbs the random numbers of another.
  Rng split(std::uint64_t stream) const noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace rats
