#include "common/rng.hpp"

namespace rats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection-free multiply-shift (Lemire); bias is negligible for the
  // spans used here (< 2^32) but we debias anyway for reproducibility
  // guarantees independent of span.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = -span % span;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Derive a child seed by hashing the current state with the stream id.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 13) ^ (stream * 0x9E3779B97F4A7C15ULL);
  Rng child(0);
  for (auto& word : child.s_) word = splitmix64(x);
  return child;
}

}  // namespace rats
