// Physical units and quantities used throughout the library.
//
// The paper works in bytes (data volumes), flops (task computational
// cost), seconds (time) and flop/s (processor speed).  We keep them as
// plain doubles with strong naming conventions rather than wrapper
// types: the quantities are mixed in arithmetic constantly (rates,
// areas) and the simulator is performance sensitive.
#pragma once

#include <cstdint>

namespace rats {

using Bytes = double;    ///< data volume in bytes
using Flops = double;    ///< computation volume in floating point operations
using Seconds = double;  ///< virtual (simulated) time
using Rate = double;     ///< bytes per second
using FlopRate = double; ///< flops per second

// Binary prefixes (the paper's "m <= 121M" uses M = 2^20 elements).
inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * 1024.0;
inline constexpr double GiB = 1024.0 * 1024.0 * 1024.0;

// Decimal prefixes for network/processor rates (1Gb/s links, GFlop/s).
inline constexpr double Kilo = 1e3;
inline constexpr double Mega = 1e6;
inline constexpr double Giga = 1e9;

/// Number of bytes in one double-precision element (the paper's datasets
/// are m double precision elements).
inline constexpr double kBytesPerElement = 8.0;

/// Gigabit/s expressed in bytes per second (1 Gb = 1e9 bits).
inline constexpr Rate kGigabitPerSecond = 1e9 / 8.0;

}  // namespace rats
