#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace rats::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    RATS_REQUIRE(pos_ == text_.size(),
                 "trailing bytes after JSON document at offset " +
                     std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!literal("null")) fail("bad literal");
        return Value{};
      default: return number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Type::Bool;
    v.boolean = b;
    return v;
  }

  Value object() {
    Value v;
    v.type = Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    v.type = Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    Value v;
    v.type = Type::String;
    v.text = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += unicode_escape(); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return cp;
  }

  // The writers in this repo only emit \uXXXX for control bytes, but
  // accept any scalar value: surrogate pairs combine into one 4-byte
  // UTF-8 sequence, and lone surrogates are rejected instead of
  // leaking invalid UTF-8 (encoded surrogate code points) through.
  std::string unicode_escape() {
    unsigned cp = hex4();
    if (cp >= 0xDC00 && cp <= 0xDFFF) fail("unpaired low surrogate");
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("high surrogate not followed by a \\u low surrogate");
      pos_ += 2;
      const unsigned lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF)
        fail("high surrogate paired with a non-surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    }
    std::string out;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return out;
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Type::Number;
    v.raw = text_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(v.raw.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number token '" + v.raw + "'");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::get(const std::string& key) const {
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::require(const std::string& key, const char* what) const {
  const Value* v = get(key);
  RATS_REQUIRE(v != nullptr, std::string(what) + ": missing key '" + key + "'");
  return *v;
}

const std::string& Value::require_string(const std::string& key,
                                         const char* what) const {
  const Value& v = require(key, what);
  RATS_REQUIRE(v.is_string(),
               std::string(what) + ": key '" + key + "' must be a string");
  return v.text;
}

double Value::require_number(const std::string& key, const char* what) const {
  const Value& v = require(key, what);
  RATS_REQUIRE(v.is_number(),
               std::string(what) + ": key '" + key + "' must be a number");
  return v.number;
}

std::int64_t Value::require_int(const std::string& key,
                                const char* what) const {
  const Value& v = require(key, what);
  RATS_REQUIRE(v.is_number(),
               std::string(what) + ": key '" + key + "' must be a number");
  return std::strtoll(v.raw.c_str(), nullptr, 10);
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = get(key);
  return (v && v->is_string()) ? v->text : fallback;
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return (v && v->is_number()) ? v->number : fallback;
}

std::int64_t Value::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const Value* v = get(key);
  return (v && v->is_number()) ? std::strtoll(v->raw.c_str(), nullptr, 10)
                               : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = get(key);
  return (v && v->type == Type::Bool) ? v->boolean : fallback;
}

Value parse(const std::string& text) { return Parser(text).run(); }

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace rats::json
