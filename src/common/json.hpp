// Minimal JSON reader shared by the report ingester
// (report::parse_json) and the serve protocol (src/serve/).
//
// This is deliberately a *reader*, not a DOM library: writers in this
// codebase emit JSON by hand (report/render.cpp, trace/writer.cpp,
// obs/export.cpp) so their byte layout stays pinned by golden tests.
// The reader's one unusual obligation is exact numeric round-tripping:
// report JSON serialises doubles with trace_double (%.17g) and metrics
// as int64 decimal text, and the merge path in src/serve/ must
// reproduce those bytes.  Values therefore keep the *raw* number token
// alongside the parsed double, so a consumer can re-emit an integer
// without going through double at all.
//
// Object keys preserve insertion order (report items are ordered) and
// duplicate keys are kept as-is; `get` returns the first match.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rats::json {

enum class Type { Null, Bool, Number, String, Array, Object };

/// One parsed JSON value.  Strings are fully unescaped; numbers carry
/// both the strtod result and the raw token text.
struct Value {
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw;     ///< number token exactly as written
  std::string text;    ///< unescaped string payload
  std::vector<Value> items;                              ///< array elements
  std::vector<std::pair<std::string, Value>> members;    ///< object pairs

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_string() const { return type == Type::String; }
  bool is_number() const { return type == Type::Number; }

  /// First member with this key, or nullptr.
  const Value* get(const std::string& key) const;

  // Checked accessors: throw rats::Error naming `what` when the member
  // is missing or has the wrong type.
  const Value& require(const std::string& key, const char* what) const;
  const std::string& require_string(const std::string& key,
                                    const char* what) const;
  double require_number(const std::string& key, const char* what) const;
  std::int64_t require_int(const std::string& key, const char* what) const;

  // Optional accessors with defaults.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
};

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.  Throws rats::Error with a byte offset on malformed input.
Value parse(const std::string& text);

/// Escapes a string for embedding in a JSON document, matching the
/// writer convention used across the repo (trace/trace.cpp): `"`, `\`,
/// \n, \r, \t get two-character escapes, other control bytes \u00XX,
/// everything else (including non-ASCII) passes through verbatim.
std::string escape(const std::string& text);

}  // namespace rats::json
