#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rats {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_inplace(std::vector<double>& xs, double q) {
  RATS_REQUIRE(!xs.empty(), "percentile of empty sample");
  RATS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double percentile(std::vector<double> xs, double q) {
  return percentile_inplace(xs, q);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geometric_mean(const std::vector<double>& xs) {
  RATS_REQUIRE(!xs.empty(), "geometric mean of empty sample");
  double logsum = 0.0;
  for (double x : xs) {
    RATS_REQUIRE(x > 0.0, "geometric mean requires positive samples");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

}  // namespace rats
