#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace rats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RATS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  RATS_REQUIRE(row.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::to_text(int indent) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const std::string margin(static_cast<std::size_t>(indent), ' ');
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    out << margin;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size())
        out << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  out << margin;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c], '-');
    if (c + 1 < header_.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << (c ? "," : "") << escape(header_[c]);
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c ? "," : "") << escape(row[c]);
    out << '\n';
  }
  return out.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace rats
