#include "model/amdahl.hpp"

#include "common/error.hpp"

namespace rats {

AmdahlModel::AmdahlModel(FlopRate flop_rate) : flop_rate_(flop_rate) {
  RATS_REQUIRE(flop_rate > 0, "processor speed must be positive");
}

Seconds AmdahlModel::sequential_time(const Task& task) const {
  return task.flops / flop_rate_;
}

Seconds AmdahlModel::execution_time(const Task& task, int procs) const {
  RATS_REQUIRE(procs >= 1, "a task runs on at least one processor");
  const double p = static_cast<double>(procs);
  return sequential_time(task) * (task.alpha + (1.0 - task.alpha) / p);
}

double AmdahlModel::work(const Task& task, int procs) const {
  return static_cast<double>(procs) * execution_time(task, procs);
}

Seconds AmdahlModel::gain_of_one_more(const Task& task, int procs) const {
  return execution_time(task, procs) - execution_time(task, procs + 1);
}

}  // namespace rats
