// Moldable-task performance model (paper Section II-A).
//
// Task execution time follows Amdahl's law: a fraction alpha of the
// sequential time is non-parallelizable, the rest scales perfectly:
//
//     T(t, p) = T_seq(t) * (alpha + (1 - alpha) / p)
//
// with T_seq(t) = flops(t) / processor_speed.  The model is strictly
// monotonically decreasing in p (for alpha < 1), as the paper assumes.
// The work of a task is omega = p * T(t, p); it is non-decreasing in p,
// which is what the time-cost strategy trades against execution time.
#pragma once

#include "common/units.hpp"
#include "dag/task_graph.hpp"

namespace rats {

/// Amdahl's-law execution-time model for a homogeneous cluster whose
/// processors each deliver `flop_rate` flops per second.
class AmdahlModel {
 public:
  explicit AmdahlModel(FlopRate flop_rate);

  /// Sequential execution time of `task`.
  Seconds sequential_time(const Task& task) const;

  /// Execution time of `task` on `procs` processors.  Requires procs >= 1.
  Seconds execution_time(const Task& task, int procs) const;

  /// Work (processor-time area) of `task` on `procs` processors.
  double work(const Task& task, int procs) const;

  /// Marginal benefit of adding one processor: T(t,p) - T(t,p+1).
  /// Always >= 0 under this model.
  Seconds gain_of_one_more(const Task& task, int procs) const;

  FlopRate flop_rate() const { return flop_rate_; }

 private:
  FlopRate flop_rate_;
};

}  // namespace rats
