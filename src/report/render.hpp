// Renderers over report models (see report/model.hpp for the pipeline
// overview): one structured ReportModel in, one output format out.
#pragma once

#include <string>

#include "report/model.hpp"

namespace rats::report {

/// The paper-style text report — byte-identical to the output the
/// legacy bench binaries printed.  With `csv_echo`, every table's CSV
/// form follows its text form (the legacy `--csv` flag).
std::string render_text(const ReportModel& model, bool csv_echo = false);

/// Machine-readable CSV: every table, series and scalar as its own
/// `# <type> <id>` section, blank-line separated.
std::string render_csv(const ReportModel& model);

/// The full model as one JSON document (typed cells carry numbers,
/// doubles printed with round-trip precision).
std::string render_json(const ReportModel& model);

/// Inverse of render_json: rebuilds a ReportModel from its JSON
/// document.  The JSON form carries typed values but not the legacy
/// text rendering of numeric cells, so the guaranteed identity is
/// render_json(parse_json(render_json(m))) == render_json(m) — doubles
/// survive bitwise through the %.17g round trip and metric values stay
/// exact int64.  This is the ingestion side of the serve merge path
/// (src/serve/), where worker shard payloads travel as report JSON.
/// Throws rats::Error on malformed or non-report input.
ReportModel parse_json(const std::string& text);

}  // namespace rats::report
