// Renderers over report models (see report/model.hpp for the pipeline
// overview): one structured ReportModel in, one output format out.
#pragma once

#include <string>

#include "report/model.hpp"

namespace rats::report {

/// The paper-style text report — byte-identical to the output the
/// legacy bench binaries printed.  With `csv_echo`, every table's CSV
/// form follows its text form (the legacy `--csv` flag).
std::string render_text(const ReportModel& model, bool csv_echo = false);

/// Machine-readable CSV: every table, series and scalar as its own
/// `# <type> <id>` section, blank-line separated.
std::string render_csv(const ReportModel& model);

/// The full model as one JSON document (typed cells carry numbers,
/// doubles printed with round-trip precision).
std::string render_json(const ReportModel& model);

}  // namespace rats::report
