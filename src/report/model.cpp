#include "report/model.hpp"

#include "common/format.hpp"

namespace rats::report {

void ReportModel::heading(std::string title) {
  Item item;
  item.kind = Item::Kind::Heading;
  item.heading = std::move(title);
  items.push_back(std::move(item));
}

void ReportModel::text(std::string exact) {
  Item item;
  item.kind = Item::Kind::Text;
  item.text = std::move(exact);
  items.push_back(std::move(item));
}

void ReportModel::textf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vstrf(fmt, args);
  va_end(args);
  text(std::move(out));
}

TableModel& ReportModel::table(std::string id, std::vector<Column> columns) {
  Item item;
  item.kind = Item::Kind::Table;
  item.table.id = std::move(id);
  item.table.columns = std::move(columns);
  items.push_back(std::move(item));
  return items.back().table;
}

void ReportModel::series(std::string id, std::string label,
                         std::vector<double> values) {
  Item item;
  item.kind = Item::Kind::Series;
  item.series = SeriesModel{std::move(id), std::move(label),
                            std::move(values)};
  items.push_back(std::move(item));
}

void ReportModel::scalar(std::string id, double value) {
  Item item;
  item.kind = Item::Kind::Scalar;
  item.scalar.id = std::move(id);
  item.scalar.num = value;
  item.scalar.numeric = true;
  items.push_back(std::move(item));
}

void ReportModel::scalar(std::string id, std::string text) {
  Item item;
  item.kind = Item::Kind::Scalar;
  item.scalar.id = std::move(id);
  item.scalar.text = std::move(text);
  items.push_back(std::move(item));
}

const TableModel* ReportModel::find_table(const std::string& id) const {
  for (const Item& item : items)
    if (item.kind == Item::Kind::Table && item.table.id == id)
      return &item.table;
  return nullptr;
}

}  // namespace rats::report
