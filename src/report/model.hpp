// Structured report models — the data layer of the experiment→report
// pipeline.
//
// Every scenario kind *returns* a ReportModel (named tables with typed
// columns, sorted-curve series, scalar summaries, and verbatim text
// notes) instead of printing; renderers (report/render.hpp) turn one
// model into the different output formats:
//
//   render_text  the paper-style stdout report.  Byte-identical to the
//                output the pre-pipeline bench binaries printed — every
//                formatted fragment is captured at build time, so
//                rendering is pure concatenation (the property the
//                golden-kinds suite pins for all registry kinds).
//   render_csv   machine-readable tables/series/scalars for plotting.
//   render_json  the full model as one JSON document.
//
// Items keep both the presentation (the exact cell text the aligned
// table shows) and, where meaningful, the typed value, so structured
// renderers never re-parse formatted strings.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace rats::report {

/// One table cell: the exact text the aligned table shows plus the
/// typed value when the cell is numeric.
struct Cell {
  std::string text;
  double num = 0;
  bool numeric = false;
};

/// A text cell.
inline Cell cell(std::string text) { return Cell{std::move(text), 0, false}; }
/// A numeric cell with its legacy rendering.
inline Cell cell(double value, std::string text) {
  return Cell{std::move(text), value, true};
}

enum class ColumnType { Text, Number };

struct Column {
  std::string name;
  ColumnType type = ColumnType::Text;
};

/// A named table.  `preformatted` carries the exact legacy text for
/// tables the binaries rendered with bespoke printf formatting (the
/// per-task timeline of kind "single"); when empty the text renderer
/// aligns the cells with rats::Table.  `csv_echo` mirrors the legacy
/// `--csv` behaviour of appending the CSV form right after the text
/// table on stdout.
struct TableModel {
  std::string id;
  std::vector<Column> columns;
  std::vector<std::vector<Cell>> rows;
  std::string preformatted;
  bool csv_echo = true;
};

/// A sampled numeric series — the 21-point sorted percentile curves of
/// the paper's figures.
struct SeriesModel {
  std::string id;
  std::string label;
  std::vector<double> values;
};

/// A named scalar summary (best sweep point, a run's makespan, ...).
/// Data-only: scalars render in CSV/JSON but produce no text output.
struct ScalarModel {
  std::string id;
  double num = 0;
  bool numeric = false;
  std::string text;  ///< non-numeric payload (e.g. a parameter tuple)
};

/// One metric carried alongside the report — a registry counter/gauge
/// captured after the build (see src/obs/).  `stable` mirrors
/// obs::Stability: stable values are reproducible across identical
/// runs, volatile ones depend on thread scheduling.
struct MetricModel {
  std::string name;
  std::int64_t value = 0;
  bool stable = true;
};

/// One report item, in presentation order.
struct Item {
  enum class Kind { Heading, Text, Table, Series, Scalar };
  Kind kind = Kind::Text;
  std::string heading;  ///< Heading: the underlined title
  std::string text;     ///< Text: verbatim bytes, newlines included
  TableModel table;
  SeriesModel series;
  ScalarModel scalar;
};

/// The structured result of one scenario run.
class ReportModel {
 public:
  std::string name;  ///< scenario name
  std::string kind;  ///< scenario kind
  /// A deque so appends never move existing items: the reference
  /// `table()` returns stays valid while later items are added.
  std::deque<Item> items;
  /// Registry metrics captured for this run (empty unless the caller
  /// enabled metrics).  render_text ignores them; render_csv/
  /// render_json append a metrics section only when non-empty, so a
  /// metrics-off report renders byte-identically to one without the
  /// field.
  std::vector<MetricModel> metrics;

  /// Appends an underlined section heading.
  void heading(std::string title);
  /// Appends verbatim text (the exact bytes, with trailing newline).
  void text(std::string exact);
  /// Appends printf-formatted text.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void textf(const char* fmt, ...);
  /// Appends a table and returns it for row filling (the reference
  /// stays valid across later appends — see `items`).
  TableModel& table(std::string id, std::vector<Column> columns);
  /// Appends a sorted-curve series.
  void series(std::string id, std::string label, std::vector<double> values);
  /// Appends a numeric scalar summary.
  void scalar(std::string id, double value);
  /// Appends a textual scalar summary.
  void scalar(std::string id, std::string text);

  /// First table with the given id (nullptr when absent).
  const TableModel* find_table(const std::string& id) const;
};

}  // namespace rats::report
