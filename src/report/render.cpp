#include "report/render.hpp"

#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "trace/trace.hpp"

namespace rats::report {

namespace {

/// The legacy Table rendering of a model table (text + CSV share it).
Table to_table(const TableModel& t) {
  std::vector<std::string> header;
  header.reserve(t.columns.size());
  for (const Column& c : t.columns) header.push_back(c.name);
  Table table(std::move(header));
  for (const auto& row : t.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& c : row) cells.push_back(c.text);
    table.add_row(std::move(cells));
  }
  return table;
}

/// The sorted percentile curve a series renders as (21 points, the
/// paper's figure sampling).
std::vector<double> series_curve(const SeriesModel& s) {
  return sorted_curve(s.values, 21);
}

}  // namespace

std::string render_text(const ReportModel& model, bool csv_echo) {
  std::string out;
  for (const Item& item : model.items) {
    switch (item.kind) {
      case Item::Kind::Heading:
        out += "\n" + item.heading + "\n";
        out += std::string(item.heading.size(), '=') + "\n";
        break;
      case Item::Kind::Text:
        out += item.text;
        break;
      case Item::Kind::Table: {
        const bool echo = csv_echo && item.table.csv_echo;
        if (item.table.preformatted.empty() || echo) {
          const Table table = to_table(item.table);
          out += item.table.preformatted.empty() ? table.to_text()
                                                 : item.table.preformatted;
          if (echo) out += table.to_csv();
        } else {
          out += item.table.preformatted;
        }
        break;
      }
      case Item::Kind::Series: {
        out += "  " + item.series.label +
               " (sorted, percentiles of the corpus):\n    ";
        const auto curve = series_curve(item.series);
        for (std::size_t i = 0; i < curve.size(); ++i)
          out += fmt(curve[i], 2) + (i + 1 == curve.size() ? "\n" : " ");
        break;
      }
      case Item::Kind::Scalar:
        break;  // data-only
    }
  }
  return out;
}

std::string render_csv(const ReportModel& model) {
  std::string out;
  bool first = true;
  auto section = [&](const std::string& header) {
    if (!first) out += "\n";
    first = false;
    out += header + "\n";
  };
  for (const Item& item : model.items) {
    switch (item.kind) {
      case Item::Kind::Table:
        section("# table " + item.table.id);
        out += to_table(item.table).to_csv();
        break;
      case Item::Kind::Series: {
        section("# series " + item.series.id);
        out += "percent,value\n";
        const auto curve = series_curve(item.series);
        for (std::size_t i = 0; i < curve.size(); ++i)
          out += trace_double(100.0 * static_cast<double>(i) /
                              static_cast<double>(curve.size() - 1)) +
                 "," + trace_double(curve[i]) + "\n";
        break;
      }
      case Item::Kind::Scalar:
        section("# scalar " + item.scalar.id);
        out += (item.scalar.numeric ? trace_double(item.scalar.num)
                                    : item.scalar.text) +
               "\n";
        break;
      default:
        break;  // headings/notes are presentation-only
    }
  }
  if (!model.metrics.empty()) {
    section("# metrics");
    out += "name,value,stable\n";
    for (const MetricModel& m : model.metrics)
      out += m.name + "," + std::to_string(m.value) + "," +
             (m.stable ? "1" : "0") + "\n";
  }
  return out;
}

std::string render_json(const ReportModel& model) {
  std::string out = "{\"rats_report\":1,\"name\":\"" +
                    json_escape(model.name) + "\",\"kind\":\"" +
                    json_escape(model.kind) + "\",\"items\":[";
  bool first_item = true;
  for (const Item& item : model.items) {
    out += first_item ? "\n" : ",\n";
    first_item = false;
    switch (item.kind) {
      case Item::Kind::Heading:
        out += "{\"type\":\"heading\",\"title\":\"" +
               json_escape(item.heading) + "\"}";
        break;
      case Item::Kind::Text:
        out += "{\"type\":\"text\",\"text\":\"" + json_escape(item.text) +
               "\"}";
        break;
      case Item::Kind::Table: {
        out += "{\"type\":\"table\",\"id\":\"" + json_escape(item.table.id) +
               "\",\"columns\":[";
        for (std::size_t c = 0; c < item.table.columns.size(); ++c) {
          const Column& col = item.table.columns[c];
          out += std::string(c ? "," : "") + "{\"name\":\"" +
                 json_escape(col.name) + "\",\"type\":\"" +
                 (col.type == ColumnType::Number ? "number" : "text") +
                 "\"}";
        }
        out += "],\"rows\":[";
        for (std::size_t r = 0; r < item.table.rows.size(); ++r) {
          out += r ? ",[" : "[";
          const auto& row = item.table.rows[r];
          for (std::size_t c = 0; c < row.size(); ++c) {
            out += c ? "," : "";
            out += row[c].numeric ? trace_double(row[c].num)
                                  : "\"" + json_escape(row[c].text) + "\"";
          }
          out += "]";
        }
        out += "]}";
        break;
      }
      case Item::Kind::Series: {
        out += "{\"type\":\"series\",\"id\":\"" + json_escape(item.series.id) +
               "\",\"label\":\"" + json_escape(item.series.label) +
               "\",\"values\":[";
        for (std::size_t i = 0; i < item.series.values.size(); ++i)
          out += std::string(i ? "," : "") +
                 trace_double(item.series.values[i]);
        out += "]}";
        break;
      }
      case Item::Kind::Scalar:
        out += "{\"type\":\"scalar\",\"id\":\"" + json_escape(item.scalar.id) +
               "\",\"value\":" +
               (item.scalar.numeric
                    ? trace_double(item.scalar.num)
                    : "\"" + json_escape(item.scalar.text) + "\"") +
               "}";
        break;
    }
  }
  out += "\n]";
  if (!model.metrics.empty()) {
    // Two flat objects so `jq .metrics` pins the deterministic values
    // without filtering out the scheduling-dependent ones.
    bool first_stable = true, first_volatile = true;
    std::string stable, vol;
    for (const MetricModel& m : model.metrics) {
      auto& dst = m.stable ? stable : vol;
      auto& first = m.stable ? first_stable : first_volatile;
      dst += std::string(first ? "" : ",") + "\n  \"" + json_escape(m.name) +
             "\":" + std::to_string(m.value);
      first = false;
    }
    out += ",\"metrics\":{" + stable + (first_stable ? "}" : "\n }");
    out += ",\"volatile_metrics\":{" + vol + (first_volatile ? "}" : "\n }");
  }
  out += "}\n";
  return out;
}

}  // namespace rats::report
