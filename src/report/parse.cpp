// JSON → ReportModel ingestion, the inverse of render_json (see
// render.hpp for the identity it guarantees).
#include <cstdlib>

#include "common/error.hpp"
#include "common/json.hpp"
#include "report/render.hpp"

namespace rats::report {

namespace {

Cell parse_cell(const json::Value& v) {
  if (v.is_number()) {
    // Numeric cells lose their legacy text rendering in JSON; keep the
    // raw token so text renderings of a parsed model stay readable.
    return Cell{v.raw, v.number, true};
  }
  RATS_REQUIRE(v.is_string(), "report table cell must be number or string");
  return Cell{v.text, 0, false};
}

Item parse_item(const json::Value& v) {
  RATS_REQUIRE(v.is_object(), "report item must be an object");
  const std::string& type = v.require_string("type", "report item");
  Item item;
  if (type == "heading") {
    item.kind = Item::Kind::Heading;
    item.heading = v.require_string("title", "heading item");
  } else if (type == "text") {
    item.kind = Item::Kind::Text;
    item.text = v.require_string("text", "text item");
  } else if (type == "table") {
    item.kind = Item::Kind::Table;
    item.table.id = v.require_string("id", "table item");
    const json::Value& columns = v.require("columns", "table item");
    RATS_REQUIRE(columns.is_array(), "table columns must be an array");
    for (const json::Value& c : columns.items) {
      RATS_REQUIRE(c.is_object(), "table column must be an object");
      Column col;
      col.name = c.require_string("name", "table column");
      const std::string& ct = c.require_string("type", "table column");
      RATS_REQUIRE(ct == "number" || ct == "text",
                   "table column type must be number or text");
      col.type = ct == "number" ? ColumnType::Number : ColumnType::Text;
      item.table.columns.push_back(std::move(col));
    }
    const json::Value& rows = v.require("rows", "table item");
    RATS_REQUIRE(rows.is_array(), "table rows must be an array");
    for (const json::Value& r : rows.items) {
      RATS_REQUIRE(r.is_array(), "table row must be an array");
      std::vector<Cell> cells;
      cells.reserve(r.items.size());
      for (const json::Value& c : r.items) cells.push_back(parse_cell(c));
      item.table.rows.push_back(std::move(cells));
    }
  } else if (type == "series") {
    item.kind = Item::Kind::Series;
    item.series.id = v.require_string("id", "series item");
    item.series.label = v.require_string("label", "series item");
    const json::Value& values = v.require("values", "series item");
    RATS_REQUIRE(values.is_array(), "series values must be an array");
    for (const json::Value& x : values.items) {
      RATS_REQUIRE(x.is_number(), "series value must be a number");
      item.series.values.push_back(x.number);
    }
  } else if (type == "scalar") {
    item.kind = Item::Kind::Scalar;
    item.scalar.id = v.require_string("id", "scalar item");
    const json::Value& value = v.require("value", "scalar item");
    if (value.is_number()) {
      item.scalar.num = value.number;
      item.scalar.numeric = true;
    } else {
      RATS_REQUIRE(value.is_string(),
                   "scalar value must be number or string");
      item.scalar.text = value.text;
    }
  } else {
    RATS_REQUIRE(false, "unknown report item type '" + type + "'");
  }
  return item;
}

void parse_metrics(const json::Value& doc, const char* key, bool stable,
                   ReportModel& model) {
  const json::Value* section = doc.get(key);
  if (section == nullptr) return;
  RATS_REQUIRE(section->is_object(),
               std::string(key) + " section must be an object");
  for (const auto& [name, value] : section->members) {
    RATS_REQUIRE(value.is_number(), "metric value must be a number");
    model.metrics.push_back(MetricModel{
        name, std::strtoll(value.raw.c_str(), nullptr, 10), stable});
  }
}

}  // namespace

ReportModel parse_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  RATS_REQUIRE(doc.is_object(), "report document must be a JSON object");
  RATS_REQUIRE(doc.get_int("rats_report", 0) == 1,
               "not a rats report document (rats_report != 1)");
  ReportModel model;
  model.name = doc.require_string("name", "report document");
  model.kind = doc.require_string("kind", "report document");
  const json::Value& items = doc.require("items", "report document");
  RATS_REQUIRE(items.is_array(), "report items must be an array");
  for (const json::Value& item : items.items)
    model.items.push_back(parse_item(item));
  // render_json routes metrics into a stable and a volatile object; the
  // original interleaving is not recorded, so the parsed model carries
  // all stable entries first.  Re-rendering routes them back into the
  // same two objects, preserving the byte identity.
  parse_metrics(doc, "metrics", true, model);
  parse_metrics(doc, "volatile_metrics", false, model);
  return model;
}

}  // namespace rats::report
