// Shared support for the table/figure reproduction binaries.
//
// Every bench accepts the same command line:
//   --full              use the paper's full 557-configuration corpus
//   --samples-random N  samples per random-DAG parameter combination
//   --samples-kernel N  samples per FFT size / Strassen
//   --seed S            corpus master seed
//   --csv               also emit machine-readable CSV after each table
//   --threads N         worker threads (0 = hardware concurrency)
//
// Without --full the corpus is scaled down (1 random sample, 5 kernel
// samples) so the whole bench suite runs in minutes; relative results
// (who wins, by what factor) are stable across corpus sizes because
// every entry is an independent scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daggen/corpus.hpp"
#include "exp/experiment.hpp"
#include "platform/grid5000.hpp"
#include "sched/scheduler.hpp"

namespace rats::bench {

struct BenchConfig {
  bool full = false;
  int samples_random = 1;
  int samples_kernel = 5;
  std::uint64_t seed = 42;
  bool csv = false;
  unsigned threads = 0;
};

/// Parses the common flags; prints usage and exits on --help or errors.
BenchConfig parse_args(int argc, char** argv);

/// Corpus options implied by the config (full restores the paper's
/// 3/25 sampling).
CorpusOptions corpus_options(const BenchConfig& cfg);

/// Builds the corpus (all families) for the config and announces its
/// size on stdout.
std::vector<CorpusEntry> make_corpus(const BenchConfig& cfg);

/// Builds one family's sub-corpus for the config.
std::vector<CorpusEntry> make_family(DagFamily family, const BenchConfig& cfg);

/// Keeps at most `n` entries of each family (deterministic stride
/// subsample, preserving parameter diversity).  No-op when n == 0 or
/// cfg.full was given — heavy benches use this to stay tractable on
/// small machines while --full restores the complete corpus.
std::vector<CorpusEntry> cap_per_family(std::vector<CorpusEntry> corpus,
                                        const BenchConfig& cfg, int n);

/// The three algorithm specs of the paper's main comparison with naive
/// RATS parameters (Figures 2-3): HCPA, delta(0.5), time-cost(0.5).
std::vector<AlgoSpec> naive_algos();

/// The paper's tuned RATS parameters (Table IV) for one application
/// family on one cluster (cluster matched by name).
RatsParams paper_tuned_params(DagFamily family, const std::string& cluster);

/// Algorithm specs with Table IV tuned parameters for `family` on
/// `cluster`: HCPA, tuned delta, tuned time-cost.
std::vector<AlgoSpec> tuned_algos(DagFamily family, const std::string& cluster);

/// Runs HCPA / tuned delta / tuned time-cost on `corpus` grouped by
/// family (each family uses its Table IV parameters for `cluster`) and
/// returns the merged outcomes in corpus order.  Algorithm order:
/// {HCPA, delta, time-cost}.
ExperimentData run_tuned_experiment(const std::vector<CorpusEntry>& corpus,
                                    const Cluster& cluster,
                                    unsigned threads = 0);

/// Multi-cluster form of `run_tuned_experiment`: every (cluster, corpus
/// entry, algorithm) scenario becomes one job in a single batch through
/// the persistent worker pool, so multi-cluster tables (V, VI) keep all
/// `--threads` workers busy across cluster boundaries instead of
/// draining the pool once per cluster and family.  Results are in
/// `clusters` order, each in corpus order.
std::vector<ExperimentData> run_tuned_experiments(
    const std::vector<CorpusEntry>& corpus, const std::vector<Cluster>& clusters,
    unsigned threads = 0);

/// Prints a heading followed by an underline.
void heading(const std::string& title);

/// Renders a 21-point sorted percentile curve as an ASCII sparkline
/// table row set ("x%  ratio").
void print_sorted_curve(const std::string& label,
                        const std::vector<double>& series);

}  // namespace rats::bench
