// Shared support for the table/figure reproduction binaries.
//
// Every bench accepts the same command line:
//   --full              use the paper's full 557-configuration corpus
//   --samples-random N  samples per random-DAG parameter combination
//   --samples-kernel N  samples per FFT size / Strassen
//   --seed S            corpus master seed
//   --csv               also emit machine-readable CSV after each table
//   --threads N         worker threads (0 = hardware concurrency)
//
// The corpus/algorithm/report machinery itself lives in the library
// (src/exp/presets.hpp) so the scenario engine (`rats run
// scenarios/fig2.rats`) executes the exact same code; this header only
// keeps the command-line front end plus thin aliases for the benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "daggen/corpus.hpp"
#include "exp/experiment.hpp"
#include "exp/presets.hpp"
#include "platform/grid5000.hpp"
#include "scenario/registry.hpp"
#include "sched/scheduler.hpp"

namespace rats::bench {

struct BenchConfig {
  presets::CorpusConfig corpus;
  bool csv = false;
  unsigned threads = 0;
};

/// Parses the common flags; prints usage and exits on --help or errors.
BenchConfig parse_args(int argc, char** argv);

// Thin aliases over the library presets (see src/exp/presets.hpp).
// The presets capture their announcement lines into strings (report
// models need them as data); the bench front ends still print them.
inline std::vector<CorpusEntry> make_corpus(const BenchConfig& cfg) {
  std::string announce;
  auto corpus = presets::make_corpus(cfg.corpus, &announce);
  std::fputs(announce.c_str(), stdout);
  return corpus;
}
inline std::vector<CorpusEntry> make_family(DagFamily family,
                                            const BenchConfig& cfg) {
  std::string announce;
  auto corpus = presets::make_family(family, cfg.corpus, &announce);
  std::fputs(announce.c_str(), stdout);
  return corpus;
}
inline std::vector<CorpusEntry> cap_per_family(std::vector<CorpusEntry> corpus,
                                               const BenchConfig& cfg, int n) {
  std::string announce;
  auto capped =
      presets::cap_per_family(std::move(corpus), cfg.corpus, n, &announce);
  std::fputs(announce.c_str(), stdout);
  return capped;
}
inline std::vector<AlgoSpec> naive_algos() { return presets::naive_algos(); }
inline RatsParams paper_tuned_params(DagFamily family,
                                     const std::string& cluster) {
  return presets::paper_tuned_params(family, cluster);
}
inline std::vector<AlgoSpec> tuned_algos(DagFamily family,
                                         const std::string& cluster) {
  return presets::tuned_algos(family, cluster);
}
inline ExperimentData run_tuned_experiment(
    const std::vector<CorpusEntry>& corpus, const Cluster& cluster,
    unsigned threads = 0) {
  return presets::run_tuned_experiment(corpus, cluster, threads);
}
inline std::vector<ExperimentData> run_tuned_experiments(
    const std::vector<CorpusEntry>& corpus,
    const std::vector<Cluster>& clusters, unsigned threads = 0) {
  return presets::run_tuned_experiments(corpus, clusters, threads);
}
inline void heading(const std::string& title) { presets::heading(title); }
inline void print_sorted_curve(const std::string& label,
                               const std::vector<double>& series) {
  presets::print_sorted_curve(label, series);
}

/// Runs a fig/table scenario kind with the bench command line layered
/// over its default spec — the same execution `rats run
/// scenarios/<kind>.rats` performs, so binary and scenario output stay
/// byte-identical by construction.
inline int run_kind(const char* kind, const BenchConfig& cfg) {
  auto spec = scenario::default_spec(kind);
  spec.workload.corpus = cfg.corpus;
  spec.output.csv = cfg.csv;
  spec.threads = cfg.threads;
  scenario::run(spec);
  return 0;
}

}  // namespace rats::bench
