#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rats::bench {

namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --full              paper corpus (3 random / 25 kernel samples)\n"
      "  --samples-random N  samples per random-DAG combination (default 1)\n"
      "  --samples-kernel N  samples per FFT size / Strassen (default 5)\n"
      "  --seed S            corpus master seed (default 42)\n"
      "  --csv               also emit CSV after each table\n"
      "  --threads N         worker threads (default: hardware)\n",
      prog);
  std::exit(code);
}

long parse_long(const char* prog, int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage(prog, 2);
  char* end = nullptr;
  long v = std::strtol(argv[++i], &end, 10);
  if (end == nullptr || *end != '\0') usage(prog, 2);
  return v;
}

}  // namespace

BenchConfig parse_args(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--full") == 0) {
      cfg.corpus.full = true;
    } else if (std::strcmp(a, "--samples-random") == 0) {
      cfg.corpus.samples_random =
          static_cast<int>(parse_long(argv[0], argc, argv, i));
    } else if (std::strcmp(a, "--samples-kernel") == 0) {
      cfg.corpus.samples_kernel =
          static_cast<int>(parse_long(argv[0], argc, argv, i));
    } else if (std::strcmp(a, "--seed") == 0) {
      cfg.corpus.seed =
          static_cast<std::uint64_t>(parse_long(argv[0], argc, argv, i));
    } else if (std::strcmp(a, "--csv") == 0) {
      cfg.csv = true;
    } else if (std::strcmp(a, "--threads") == 0) {
      cfg.threads = static_cast<unsigned>(parse_long(argv[0], argc, argv, i));
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a);
      usage(argv[0], 2);
    }
  }
  return cfg;
}

}  // namespace rats::bench
