// Reproduces Figure 7: total work of the schedules produced by RATS
// with tuned parameters (Table IV) relative to HCPA on the grillon
// cluster.
//
// Paper result: even though allocations can be stretched further
// (maxdelta is larger after tuning), the delta strategy still consumes
// less resources than HCPA in the vast majority of scenarios.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/fig7.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("fig7", rats::bench::parse_args(argc, argv));
}
