// Reproduces Figure 7: total work of the schedules produced by RATS
// with tuned parameters (Table IV) relative to HCPA on the grillon
// cluster.
//
// Paper result: even though allocations can be stretched further
// (maxdelta is larger after tuning), the delta strategy still consumes
// less resources than HCPA in the vast majority of scenarios.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::make_corpus(cfg);
  Cluster cluster = grid5000::grillon();

  auto data = bench::run_tuned_experiment(corpus, cluster, cfg.threads);

  bench::heading("Figure 7: relative work vs HCPA, tuned parameters, " +
                 cluster.name());
  Table table({"strategy", "avg relative work", "less work in", "equal in"});
  for (std::size_t algo : {std::size_t{1}, std::size_t{2}}) {
    auto series = relative_series(data, algo, 0, /*makespan=*/false);
    auto s = summarize_relative(series);
    table.add_row({data.algo_names[algo], fmt(s.mean_ratio, 3),
                   fmt_percent(s.fraction_better, 1),
                   fmt_percent(s.fraction_equal, 1)});
    bench::print_sorted_curve(data.algo_names[algo], series);
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: tuned RATS stays close to (mostly below) HCPA's resource "
      "usage.\n");
  return 0;
}
