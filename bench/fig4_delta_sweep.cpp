// Reproduces Figure 4: average relative makespan of RATS-delta for FFT
// DAGs on the grillon cluster as (mindelta, maxdelta) vary over the
// paper's grid — mindelta in {0,-.25,-.5,-.75}, maxdelta in
// {0,.25,.5,.75,1}.
//
// Paper result: larger maxdelta (more stretching) improves the average
// relative makespan; decreasing mindelta helps only to a certain
// extent.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/fig4.rats`; the sweep grid itself is data in the
// scenario file's [sweep] section.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("fig4", rats::bench::parse_args(argc, argv));
}
