// Reproduces Figure 4: average relative makespan of RATS-delta for FFT
// DAGs on the grillon cluster as (mindelta, maxdelta) vary over the
// paper's grid — mindelta in {0,-.25,-.5,-.75}, maxdelta in
// {0,.25,.5,.75,1}.
//
// Paper result: larger maxdelta (more stretching) improves the average
// relative makespan; decreasing mindelta helps only to a certain
// extent.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/tuning.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::make_family(DagFamily::FFT, cfg);
  Cluster cluster = grid5000::grillon();

  auto sweep = sweep_delta(corpus, cluster, cfg.threads);

  bench::heading("Figure 4: avg makespan relative to HCPA, RATS-delta, FFT, " +
                 cluster.name());
  std::vector<std::string> header{"mindelta \\ maxdelta"};
  for (double mx : sweep.maxdeltas) header.push_back(fmt(mx, 2));
  Table table(header);
  for (std::size_t i = 0; i < sweep.mindeltas.size(); ++i) {
    std::vector<std::string> row{fmt(sweep.mindeltas[i], 2)};
    for (std::size_t j = 0; j < sweep.maxdeltas.size(); ++j)
      row.push_back(fmt(sweep.avg_relative[i][j], 3));
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf("\n  best: mindelta=%s maxdelta=%s -> %s\n",
              fmt(sweep.best_mindelta, 2).c_str(),
              fmt(sweep.best_maxdelta, 2).c_str(),
              fmt(sweep.best_value, 3).c_str());
  std::printf(
      "  paper: larger maxdelta improves the relative makespan; lowering\n"
      "  mindelta helps only to a certain extent (Table IV picks (-.5, 1)).\n");
  return 0;
}
