// Reproduces Figure 5: average relative makespan of RATS-time-cost for
// irregular random DAGs on the grillon cluster as minrho varies
// ({.2,.4,.5,.6,.8,1}), with packing allowed vs disallowed.
//
// Paper result: packing always helps; a threshold around minrho = 0.5
// gives the best average makespan, beyond which more flexibility does
// not pay off.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/fig5.rats`; the rho grid is data in the scenario
// file's [sweep] section.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("fig5", rats::bench::parse_args(argc, argv));
}
