// Reproduces Figure 5: average relative makespan of RATS-time-cost for
// irregular random DAGs on the grillon cluster as minrho varies
// ({.2,.4,.5,.6,.8,1}), with packing allowed vs disallowed.
//
// Paper result: packing always helps; a threshold around minrho = 0.5
// gives the best average makespan, beyond which more flexibility does
// not pay off.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/tuning.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::cap_per_family(
      bench::make_family(DagFamily::Irregular, cfg), cfg, 16);
  Cluster cluster = grid5000::grillon();

  auto sweep = sweep_rho(corpus, cluster, cfg.threads);

  bench::heading(
      "Figure 5: avg makespan relative to HCPA, RATS-time-cost, irregular, " +
      cluster.name());
  Table table({"minrho", "packing allowed", "no packing"});
  for (std::size_t i = 0; i < sweep.minrhos.size(); ++i)
    table.add_row({fmt(sweep.minrhos[i], 2), fmt(sweep.with_packing[i], 3),
                   fmt(sweep.without_packing[i], 3)});
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf("\n  best (packing allowed): minrho=%s -> %s\n",
              fmt(sweep.best_minrho, 2).c_str(),
              fmt(sweep.best_value, 3).c_str());
  std::printf(
      "  paper: packing gives better performance at every minrho; the\n"
      "  curve flattens beyond a threshold (0.5 on grillon).\n");
  return 0;
}
