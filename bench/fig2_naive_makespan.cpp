// Reproduces Figure 2: makespan of RATS using the delta
// (mindelta = maxdelta = 0.5) and time-cost (packing allowed,
// minrho = 0.5) strategies relative to HCPA on the grillon cluster,
// over the whole application corpus.  Each series is sorted
// independently, as in the paper.
//
// Paper result: delta averages ~9% shorter than HCPA (better in 72% of
// scenarios); time-cost ~16% shorter (better in 80%).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::make_corpus(cfg);
  Cluster cluster = grid5000::grillon();

  auto data = run_experiment(corpus, cluster, bench::naive_algos(), cfg.threads);

  bench::heading("Figure 2: relative makespan vs HCPA, naive parameters, " +
                 cluster.name());
  Table table({"strategy", "avg relative makespan", "avg improvement",
               "shorter in", "equal in"});
  for (std::size_t algo : {std::size_t{1}, std::size_t{2}}) {
    auto series = relative_series(data, algo, 0, /*makespan=*/true);
    auto s = summarize_relative(series);
    table.add_row({data.algo_names[algo], fmt(s.mean_ratio, 3),
                   fmt_percent(1.0 - s.mean_ratio, 1),
                   fmt_percent(s.fraction_better, 1),
                   fmt_percent(s.fraction_equal, 1)});
    bench::print_sorted_curve(data.algo_names[algo], series);
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: delta ~9%% shorter on average, better in 72%% of "
      "scenarios;\n         time-cost ~16%% shorter, better in 80%%.\n");
  return 0;
}
