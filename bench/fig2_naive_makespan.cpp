// Reproduces Figure 2: makespan of RATS using the delta
// (mindelta = maxdelta = 0.5) and time-cost (packing allowed,
// minrho = 0.5) strategies relative to HCPA on the grillon cluster,
// over the whole application corpus.  Each series is sorted
// independently, as in the paper.
//
// Paper result: delta averages ~9% shorter than HCPA (better in 72% of
// scenarios); time-cost ~16% shorter (better in 80%).
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/fig2.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("fig2", rats::bench::parse_args(argc, argv));
}
