// Reproduces Table III: the random-DAG generation parameters and the
// resulting corpus composition (108 layered + 324 irregular + 100 FFT
// + 25 Strassen = 557 configurations at paper scale), with structural
// statistics per family.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "dag/graph_algorithms.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::make_corpus(cfg);

  bench::heading("Table III: corpus composition");
  Table params({"family", "#configs", "tasks", "edges(min-max)",
                "avg levels", "avg width"});
  for (DagFamily family : {DagFamily::Layered, DagFamily::Irregular,
                           DagFamily::FFT, DagFamily::Strassen}) {
    int count = 0;
    std::int32_t min_edges = INT32_MAX, max_edges = 0;
    std::int32_t min_tasks = INT32_MAX, max_tasks = 0;
    double sum_levels = 0, sum_width = 0;
    for (const auto& e : corpus) {
      if (e.family != family) continue;
      ++count;
      min_edges = std::min(min_edges, e.graph.num_edges());
      max_edges = std::max(max_edges, e.graph.num_edges());
      min_tasks = std::min(min_tasks, e.graph.num_tasks());
      max_tasks = std::max(max_tasks, e.graph.num_tasks());
      auto levels = task_levels(e.graph);
      int num_levels = 1 + *std::max_element(levels.begin(), levels.end());
      std::vector<int> per_level(static_cast<std::size_t>(num_levels), 0);
      for (int l : levels) ++per_level[static_cast<std::size_t>(l)];
      sum_levels += num_levels;
      sum_width += *std::max_element(per_level.begin(), per_level.end());
    }
    if (count == 0) continue;
    params.add_row({to_string(family), std::to_string(count),
                    std::to_string(min_tasks) + "-" + std::to_string(max_tasks),
                    std::to_string(min_edges) + "-" + std::to_string(max_edges),
                    fmt(sum_levels / count, 1), fmt(sum_width / count, 1)});
  }
  std::printf("%s", params.to_text().c_str());
  if (cfg.csv) std::printf("%s", params.to_csv().c_str());

  std::printf(
      "\n  paper scale: 108 layered + 324 irregular + 100 FFT + 25 Strassen "
      "= 557\n  (this run: %zu; --full regenerates the paper corpus)\n",
      corpus.size());
  return 0;
}
