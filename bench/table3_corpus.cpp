// Reproduces Table III: the random-DAG generation parameters and the
// resulting corpus composition (108 layered + 324 irregular + 100 FFT
// + 25 Strassen = 557 configurations at paper scale), with structural
// statistics per family.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/table3.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("table3", rats::bench::parse_args(argc, argv));
}
