// Reproduces Table VI: average degradation from best for HCPA,
// RATS-delta and RATS-time-cost (tuned parameters) on the three
// clusters, with the paper's two averaging methods — over all
// experiments, and over only the experiments where the algorithm was
// not the best.
//
// Paper result: time-cost degrades < 6% on average (improving with
// cluster size); delta's degradation grows with cluster size; HCPA can
// be more than twice as long as the best.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::cap_per_family(bench::make_corpus(cfg), cfg, 12);

  bench::heading("Table VI: average degradation from best");
  Table table({"cluster", "metric", "HCPA", "delta", "time-cost"});
  // One (cluster, entry, algo) batch across all clusters — the pool
  // stays saturated for the whole table.
  const auto clusters = grid5000::all();
  std::printf("  running corpus on %zu clusters...\n", clusters.size());
  const auto per_cluster =
      bench::run_tuned_experiments(corpus, clusters, cfg.threads);
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const Cluster& cluster = clusters[ci];
    const ExperimentData& data = per_cluster[ci];
    Degradation d[3];
    for (std::size_t a = 0; a < 3; ++a) d[a] = degradation_from_best(data, a);
    table.add_row({cluster.name(), "avg over all exp.",
                   fmt_percent(d[0].avg_over_all, 2),
                   fmt_percent(d[1].avg_over_all, 2),
                   fmt_percent(d[2].avg_over_all, 2)});
    table.add_row({"", "# not best", std::to_string(d[0].not_best),
                   std::to_string(d[1].not_best),
                   std::to_string(d[2].not_best)});
    table.add_row({"", "avg over # not best",
                   fmt_percent(d[0].avg_over_not_best, 2),
                   fmt_percent(d[1].avg_over_not_best, 2),
                   fmt_percent(d[2].avg_over_not_best, 2)});
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: time-cost stays closest to the best (< 6%% over all\n"
      "  experiments, improving with cluster size); delta degrades as the\n"
      "  cluster grows; HCPA reaches > 100%% on large clusters.\n");
  return 0;
}
