// Reproduces Table VI: average degradation from best for HCPA,
// RATS-delta and RATS-time-cost (tuned parameters) on the three
// clusters, with the paper's two averaging methods — over all
// experiments, and over only the experiments where the algorithm was
// not the best.
//
// Paper result: time-cost degrades < 6% on average (improving with
// cluster size); delta's degradation grows with cluster size; HCPA can
// be more than twice as long as the best.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/table6.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("table6", rats::bench::parse_args(argc, argv));
}
