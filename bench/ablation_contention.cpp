// Ablation: network contention (Section IV-D's explanation).
//
// The schedulers estimate redistribution times without cross-traffic;
// the simulator then executes the schedule with Max-Min fair link
// sharing.  This bench simulates the same schedules with contention on
// and off, quantifying how much contention inflates makespans — the
// effect redistribution-aware mapping mitigates — and how the error of
// the schedulers' internal estimate shrinks when redistributions are
// avoided.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/parallel.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::cap_per_family(bench::make_corpus(cfg), cfg, 12);
  Cluster cluster = grid5000::grillon();

  auto algos = bench::naive_algos();
  bench::heading("Ablation: contention vs contention-free simulation, " +
                 cluster.name());
  Table table({"algorithm", "avg makespan inflation by contention",
               "avg net bytes / DAG", "max inflation"});
  for (const auto& algo : algos) {
    std::vector<double> inflation(corpus.size());
    std::vector<double> bytes(corpus.size());
    parallel_for(corpus.size(), [&](std::size_t i) {
      Schedule s = build_schedule(corpus[i].graph, cluster, algo.options);
      SimulatorOptions with, without;
      without.contention = false;
      auto rw = simulate(corpus[i].graph, s, cluster, with);
      auto ro = simulate(corpus[i].graph, s, cluster, without);
      inflation[i] = rw.makespan / ro.makespan;
      bytes[i] = rw.network_bytes;
    }, cfg.threads);
    double sum = 0, mx = 0, bsum = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      sum += inflation[i];
      mx = std::max(mx, inflation[i]);
      bsum += bytes[i];
    }
    table.add_row({algo.name, fmt(sum / corpus.size(), 3),
                   fmt(bsum / corpus.size() / 1e9, 2) + " GB",
                   fmt(mx, 3)});
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  expectation: RATS schedules move fewer bytes (redistributions\n"
      "  avoided), so contention inflates them less than HCPA's.\n");
  return 0;
}
