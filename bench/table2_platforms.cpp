// Reproduces Table II: the characteristics of the three simulated
// Grid'5000 clusters, plus the derived network structure our platform
// model builds for each (links, routes, TCP-window bandwidth bound).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "platform/grid5000.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);

  bench::heading("Table II: cluster characteristics");
  Table table({"Cluster", "#proc.", "GFlop/sec", "topology", "#links"});
  for (const Cluster& c : grid5000::all()) {
    table.add_row({c.name(), std::to_string(c.num_nodes()),
                   fmt(c.node_speed() / 1e9, 3),
                   c.hierarchical_topology()
                       ? std::to_string(c.cabinets()) + " cabinets"
                       : "flat switch",
                   std::to_string(c.num_links())});
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());

  bench::heading("Derived network model (Section IV-A)");
  for (const Cluster& c : grid5000::all()) {
    NodeId far = static_cast<NodeId>(c.num_nodes() - 1);
    auto route = c.route(0, far);
    Seconds lat = c.route_latency(0, far);
    Seconds rtt = 2 * lat;
    Rate beta = c.link(c.nic_up(0)).bandwidth;
    Rate beta_prime = std::min(beta, c.tcp_window() / rtt);
    std::printf(
        "  %-8s route node0->node%-3d: %zu links, one-way latency %s us, "
        "beta' = min(beta, Wmax/RTT) = %s MB/s (beta = %s MB/s)\n",
        c.name().c_str(), far, route.size(), fmt(lat * 1e6, 1).c_str(),
        fmt(beta_prime / 1e6, 1).c_str(), fmt(beta / 1e6, 1).c_str());
  }
  return 0;
}
