// Reproduces Table II: the characteristics of the three simulated
// Grid'5000 clusters, plus the derived network structure our platform
// model builds for each (links, routes, TCP-window bandwidth bound).
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/table2.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("table2", rats::bench::parse_args(argc, argv));
}
