// Reproduces Table V: pairwise better/equal/worse counts of HCPA,
// RATS-delta and RATS-time-cost (tuned parameters) on the three
// clusters, plus the "combined" percentages against all other
// algorithms.
//
// Paper result: ranking {time-cost, delta, HCPA}; time-cost gets
// stronger as the cluster grows, delta is best on small/medium
// clusters.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::cap_per_family(bench::make_corpus(cfg), cfg, 12);

  // All (cluster, entry, algo) scenarios go through the worker pool as
  // one batch, so --threads spans the whole table instead of one
  // cluster at a time.
  const auto clusters = grid5000::all();
  std::printf("  running corpus on %zu clusters...\n", clusters.size());
  const std::vector<ExperimentData> per_cluster =
      bench::run_tuned_experiments(corpus, clusters, cfg.threads);
  const auto& names = per_cluster.front().algo_names;

  bench::heading("Table V: pairwise comparison (chti / grillon / grelon)");
  Table table({"algorithm", "", "vs HCPA", "vs delta", "vs time-cost",
               "combined (%)"});
  for (std::size_t a = 0; a < names.size(); ++a) {
    const char* rows[3] = {"better", "equal", "worse"};
    for (int r = 0; r < 3; ++r) {
      std::vector<std::string> row{r == 0 ? names[a] : "", rows[r]};
      for (std::size_t b = 0; b < names.size(); ++b) {
        if (a == b) {
          row.push_back("XXX");
          continue;
        }
        std::string cell;
        for (const auto& data : per_cluster) {
          auto c = pairwise_compare(data, a, b);
          int v = r == 0 ? c.better : (r == 1 ? c.equal : c.worse);
          cell += (cell.empty() ? "" : " / ") + std::to_string(v);
        }
        row.push_back(cell);
      }
      std::string comb;
      for (const auto& data : per_cluster) {
        auto f = combined_compare(data, a);
        double v = r == 0 ? f.better : (r == 1 ? f.equal : f.worse);
        comb += (comb.empty() ? "" : " / ") + fmt(100 * v, 1);
      }
      row.push_back(comb);
      table.add_row(row);
    }
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: ranking {time-cost, delta, HCPA} by best-result counts;\n"
      "  time-cost wins more as cluster size grows, delta is strongest on\n"
      "  small and medium clusters.\n");
  return 0;
}
