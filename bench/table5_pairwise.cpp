// Reproduces Table V: pairwise better/equal/worse counts of HCPA,
// RATS-delta and RATS-time-cost (tuned parameters) on the three
// clusters, plus the "combined" percentages against all other
// algorithms.
//
// Paper result: ranking {time-cost, delta, HCPA}; time-cost gets
// stronger as the cluster grows, delta is best on small/medium
// clusters.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/table5.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("table5", rats::bench::parse_args(argc, argv));
}
