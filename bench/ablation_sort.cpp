// Ablation: the RATS secondary ready-list sort (Section III-C).
//
// RATS keeps the bottom-level primary order but adds a stable
// secondary sort — increasing delta(t) for the delta strategy,
// decreasing gain(t) for time-cost.  This bench quantifies what that
// secondary sort contributes by running both strategies with and
// without it.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::cap_per_family(bench::make_corpus(cfg), cfg, 12);
  Cluster cluster = grid5000::grillon();

  auto algos = bench::naive_algos();  // HCPA, delta, time-cost
  for (std::size_t a = 1; a < 3; ++a) {
    AlgoSpec unsorted = algos[a];
    unsorted.name += " (no 2nd sort)";
    unsorted.options.secondary_sort = false;
    algos.push_back(unsorted);
  }

  auto data = run_experiment(corpus, cluster, algos, cfg.threads);

  bench::heading("Ablation: RATS secondary ready-list sort, " + cluster.name());
  Table table({"strategy", "avg relative makespan", "shorter than HCPA in"});
  for (std::size_t algo = 1; algo < data.algos(); ++algo) {
    auto series = relative_series(data, algo, 0, /*makespan=*/true);
    auto s = summarize_relative(series);
    table.add_row({data.algo_names[algo], fmt(s.mean_ratio, 3),
                   fmt_percent(s.fraction_better, 1)});
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());

  // Head-to-head: sorted vs unsorted variant of the same strategy.
  for (std::size_t a = 1; a < 3; ++a) {
    auto c = pairwise_compare(data, a, a + 2);
    std::printf("  %s with sort vs without: better %d, equal %d, worse %d\n",
                data.algo_names[a].c_str(), c.better, c.equal, c.worse);
  }
  return 0;
}
