// Reproduces Table I: the communication matrix for a redistribution of
// 10 units of data between p = 4 sending and q = 5 receiving
// processors, plus the self-communication behaviour the paper
// describes for overlapping processor sets.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "redist/block_redistribution.hpp"

using namespace rats;

namespace {

void print_matrix(const Redistribution& r, Bytes unit) {
  auto m = r.matrix();
  std::vector<std::string> header{""};
  for (int q = 0; q < r.receivers(); ++q)
    header.push_back("q" + std::to_string(q + 1));
  Table table(header);
  for (int p = 0; p < r.senders(); ++p) {
    std::vector<std::string> row{"p" + std::to_string(p + 1)};
    for (int q = 0; q < r.receivers(); ++q) {
      double units = m[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] / unit;
      row.push_back(units == 0 ? "" : fmt(units, 2));
    }
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);

  bench::heading(
      "Table I: communication matrix, 10 units, p=4 senders, q=5 receivers");
  const Bytes unit = 1024;  // any unit; the matrix scales linearly
  std::vector<NodeId> senders{0, 1, 2, 3};
  std::vector<NodeId> receivers{4, 5, 6, 7, 8};
  auto r = Redistribution::plan(10 * unit, senders, receivers);
  print_matrix(r, unit);
  std::printf("  non-empty entries: %zu (expected p+q-1 = 8)\n",
              r.transfers().size());
  std::printf("  self bytes: %s units, remote: %s units\n",
              fmt(r.self_bytes() / unit, 2).c_str(),
              fmt(r.remote_bytes() / unit, 2).c_str());

  bench::heading(
      "Overlapping sets: receiver order permuted to maximize self "
      "communication");
  std::vector<NodeId> overlap_recv{2, 3, 4, 5, 6};
  auto r2 = Redistribution::plan(10 * unit, senders, overlap_recv);
  print_matrix(r2, unit);
  std::printf("  self bytes: %s units (stay on node), remote: %s units\n",
              fmt(r2.self_bytes() / unit, 2).c_str(),
              fmt(r2.remote_bytes() / unit, 2).c_str());

  bench::heading("Identical sets: redistribution cost is zero");
  auto r3 = Redistribution::plan(10 * unit, senders, senders);
  std::printf("  remote bytes: %s (paper: zero when tasks share the same "
              "processor set)\n",
              fmt(r3.remote_bytes(), 0).c_str());
  (void)cfg;
  return 0;
}
