// Reproduces Table I: the communication matrix for a redistribution of
// 10 units of data between p = 4 sending and q = 5 receiving
// processors, plus the self-communication behaviour the paper
// describes for overlapping processor sets.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/table1.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("table1", rats::bench::parse_args(argc, argv));
}
