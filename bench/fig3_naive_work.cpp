// Reproduces Figure 3: total work of the schedules produced by RATS
// (delta and time-cost, naive parameters) relative to HCPA on the
// grillon cluster.
//
// Paper result: both RATS versions do not consume much more resources
// than HCPA, and delta consumes less than time-cost.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::make_corpus(cfg);
  Cluster cluster = grid5000::grillon();

  auto data = run_experiment(corpus, cluster, bench::naive_algos(), cfg.threads);

  bench::heading("Figure 3: relative work vs HCPA, naive parameters, " +
                 cluster.name());
  Table table({"strategy", "avg relative work", "less work in", "equal in"});
  for (std::size_t algo : {std::size_t{1}, std::size_t{2}}) {
    auto series = relative_series(data, algo, 0, /*makespan=*/false);
    auto s = summarize_relative(series);
    table.add_row({data.algo_names[algo], fmt(s.mean_ratio, 3),
                   fmt_percent(s.fraction_better, 1),
                   fmt_percent(s.fraction_equal, 1)});
    bench::print_sorted_curve(data.algo_names[algo], series);
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: both strategies stay close to HCPA's resource usage;\n"
      "         delta consumes less than time-cost.\n");
  return 0;
}
