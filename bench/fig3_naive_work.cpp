// Reproduces Figure 3: total work of the schedules produced by RATS
// (delta and time-cost, naive parameters) relative to HCPA on the
// grillon cluster.
//
// Paper result: both RATS versions do not consume much more resources
// than HCPA, and delta consumes less than time-cost.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/fig3.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("fig3", rats::bench::parse_args(argc, argv));
}
