// google-benchmark microbenchmarks of the simulation substrate: the
// Max-Min fair-share solver, block-redistribution planning, the fluid
// network flow simulation, DAG generation, and one end-to-end
// schedule+simulate scenario per algorithm.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "daggen/random_dag.hpp"
#include "net/fluid_network.hpp"
#include "net/maxmin.hpp"
#include "platform/grid5000.hpp"
#include "redist/block_redistribution.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rats;

// Max-Min solver: `flows` random flows over a 64-node flat cluster's
// NIC links (two links per flow).
void BM_MaxMinSolver(benchmark::State& state) {
  const int nodes = 64;
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  std::vector<Rate> capacity(static_cast<std::size_t>(2 * nodes), 125e6);
  Rng rng(7);
  std::vector<FlowDemand> flows(flows_count);
  for (auto& f : flows) {
    auto src = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    auto dst = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    if (dst == src) dst = (dst + 1) % nodes;
    f.links = {2 * src, 2 * dst + 1};
  }
  for (auto _ : state) {
    auto rates = maxmin_fair_rates(capacity, flows);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows_count));
}
BENCHMARK(BM_MaxMinSolver)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Planning one block redistribution between disjoint p- and q-sets.
void BM_RedistributionPlan(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int q = p + p / 2 + 1;
  std::vector<NodeId> senders, receivers;
  for (int i = 0; i < p; ++i) senders.push_back(i);
  for (int i = 0; i < q; ++i) receivers.push_back(p + i);
  for (auto _ : state) {
    auto r = Redistribution::plan(1e9, senders, receivers);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RedistributionPlan)->Arg(4)->Arg(16)->Arg(64);

// Fluid network: `n` concurrent point-to-point flows on grillon.
void BM_FluidNetwork(benchmark::State& state) {
  Cluster cluster = grid5000::grillon();
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    FluidNetwork net(cluster);
    for (int i = 0; i < n; ++i) {
      NodeId src = static_cast<NodeId>(i % cluster.num_nodes());
      NodeId dst = static_cast<NodeId>((i + 7) % cluster.num_nodes());
      if (dst == src) dst = (dst + 1) % cluster.num_nodes();
      net.open_flow(src, dst, 1e8);
    }
    while (auto t = net.next_event_time()) net.advance_to(*t);
    benchmark::DoNotOptimize(net.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FluidNetwork)->Arg(8)->Arg(32)->Arg(128);

// DAG generation throughput.
void BM_GenerateIrregularDag(benchmark::State& state) {
  RandomDagParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.width = 0.5;
  params.density = 0.8;
  params.regularity = 0.2;
  params.jump = 2;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto g = generate_irregular_dag(params, rng);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenerateIrregularDag)->Arg(25)->Arg(100);

// End-to-end: schedule + simulate one FFT k=8 DAG on grillon.
void BM_ScheduleAndSimulate(benchmark::State& state) {
  Cluster cluster = grid5000::grillon();
  Rng rng(3);
  TaskGraph g = generate_fft_dag(8, rng);
  SchedulerOptions options;
  options.kind = static_cast<SchedulerKind>(state.range(0));
  for (auto _ : state) {
    Schedule s = build_schedule(g, cluster, options);
    auto r = simulate(g, s, cluster);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_ScheduleAndSimulate)
    ->Arg(static_cast<int>(SchedulerKind::Hcpa))
    ->Arg(static_cast<int>(SchedulerKind::RatsDelta))
    ->Arg(static_cast<int>(SchedulerKind::RatsTimeCost));

}  // namespace

BENCHMARK_MAIN();
