// Microbenchmarks of the simulation substrate: the Max-Min fair-share
// solver (incremental vs reference), block-redistribution planning, the
// fluid network flow simulation, DAG generation, and one end-to-end
// schedule+simulate scenario per algorithm.
//
// Three modes:
//  * default            — google-benchmark microbenchmarks;
//  * --grid [--out F]   — the solver scaling grid (flows x links x
//                         events, old vs new solver), emitting JSON
//                         under bench/results/ so speedups land in the
//                         benchmark trajectory.  --quick shrinks the
//                         grid for CI smoke runs;
//  * --components       — re-solve cost vs sharing-component size at a
//                         fixed total flow count: each event perturbs
//                         one component and is solved either globally
//                         (every active flow, what the engine paid
//                         before component scoping) or component-scoped
//                         (the subset overload over one component).
//                         Emits JSON; --quick shrinks it;
//  * --bipartite        — cold-solve cost on flat-cluster populations
//                         (every flow = {src uplink, dst downlink}):
//                         general lazy-heap solver vs the
//                         BipartiteWaterfillSolver specialization,
//                         which must win on every cell.  Emits JSON;
//  * --warmstart        — per-event re-solve cost after a single-flow
//                         swap: full cold solve (what the engine paid
//                         before warm starts) vs solve_warm over the
//                         saturation trace, with cold fallbacks
//                         counted.  Emits JSON.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "daggen/random_dag.hpp"
#include "net/fluid_network.hpp"
#include "net/maxmin.hpp"
#include "platform/grid5000.hpp"
#include "redist/block_redistribution.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rats;

// Random flow population: `flows_count` flows over `links` NIC-style
// links, two links per flow (sender up + receiver down), 30% TCP-capped.
std::vector<FlowDemand> make_flows(std::size_t flows_count, int links,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowDemand> flows(flows_count);
  const int nodes = links / 2;
  for (auto& f : flows) {
    auto src = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    auto dst = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    if (dst == src) dst = (dst + 1) % nodes;
    f.links = {2 * src, 2 * dst + 1};
    if (rng.bernoulli(0.3)) f.cap = rng.uniform(1e6, 125e6);
  }
  return flows;
}

// Max-Min solver: `flows` random flows over a 64-node flat cluster's
// NIC links (two links per flow).
void BM_MaxMinSolver(benchmark::State& state) {
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  std::vector<Rate> capacity(128, 125e6);
  const auto flows = make_flows(flows_count, 128, 7);
  MaxMinSolver solver;
  std::vector<Rate> rates;
  for (auto _ : state) {
    solver.solve(capacity, flows, rates);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows_count));
}
BENCHMARK(BM_MaxMinSolver)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// The seed's full-rescan solver on the same instances, for comparison.
void BM_MaxMinSolverReference(benchmark::State& state) {
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  std::vector<Rate> capacity(128, 125e6);
  const auto flows = make_flows(flows_count, 128, 7);
  for (auto _ : state) {
    auto rates = maxmin_fair_rates_reference(capacity, flows);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows_count));
}
BENCHMARK(BM_MaxMinSolverReference)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Planning one block redistribution between disjoint p- and q-sets.
void BM_RedistributionPlan(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int q = p + p / 2 + 1;
  std::vector<NodeId> senders, receivers;
  for (int i = 0; i < p; ++i) senders.push_back(i);
  for (int i = 0; i < q; ++i) receivers.push_back(p + i);
  for (auto _ : state) {
    auto r = Redistribution::plan(1e9, senders, receivers);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RedistributionPlan)->Arg(4)->Arg(16)->Arg(64);

// Fluid network: `n` concurrent point-to-point flows on grillon.
void BM_FluidNetwork(benchmark::State& state) {
  Cluster cluster = grid5000::grillon();
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    FluidNetwork net(cluster);
    for (int i = 0; i < n; ++i) {
      NodeId src = static_cast<NodeId>(i % cluster.num_nodes());
      NodeId dst = static_cast<NodeId>((i + 7) % cluster.num_nodes());
      if (dst == src) dst = (dst + 1) % cluster.num_nodes();
      net.open_flow(src, dst, 1e8);
    }
    while (auto t = net.next_event_time()) net.advance_to(*t);
    benchmark::DoNotOptimize(net.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FluidNetwork)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// DAG generation throughput.
void BM_GenerateIrregularDag(benchmark::State& state) {
  RandomDagParams params;
  params.num_tasks = static_cast<int>(state.range(0));
  params.width = 0.5;
  params.density = 0.8;
  params.regularity = 0.2;
  params.jump = 2;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto g = generate_irregular_dag(params, rng);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenerateIrregularDag)->Arg(25)->Arg(100);

// End-to-end: schedule + simulate one FFT k=8 DAG on grillon.
void BM_ScheduleAndSimulate(benchmark::State& state) {
  Cluster cluster = grid5000::grillon();
  Rng rng(3);
  TaskGraph g = generate_fft_dag(8, rng);
  SchedulerOptions options;
  options.kind = static_cast<SchedulerKind>(state.range(0));
  for (auto _ : state) {
    Schedule s = build_schedule(g, cluster, options);
    auto r = simulate(g, s, cluster);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_ScheduleAndSimulate)
    ->Arg(static_cast<int>(SchedulerKind::Hcpa))
    ->Arg(static_cast<int>(SchedulerKind::RatsDelta))
    ->Arg(static_cast<int>(SchedulerKind::RatsTimeCost));

// ------------------------------------------------------- scaling grid
//
// Simulates the event-driven usage pattern: `events` successive solves,
// each after swapping one flow out of / a fresh flow into the
// population (what a flow arrival/departure does to the fluid network).
// The reference solver pays a full from-scratch solve per event; the
// incremental solver reuses its scratch and heap machinery.

double time_solves_ms(const std::vector<Rate>& capacity,
                      std::vector<FlowDemand>& flows, int events,
                      bool incremental, std::uint64_t seed) {
  Rng rng(seed);
  MaxMinSolver solver;
  std::vector<Rate> rates;
  const auto start = std::chrono::steady_clock::now();
  for (int e = 0; e < events; ++e) {
    if (incremental)
      solver.solve(capacity, flows, rates);
    else
      rates = maxmin_fair_rates_reference(capacity, flows);
    benchmark::DoNotOptimize(rates);
    // One departure + one arrival between events.
    const auto victim =
        static_cast<std::size_t>(rng.uniform_int(0, flows.size() - 1));
    const int nodes = static_cast<int>(capacity.size()) / 2;
    auto src = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    auto dst = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    if (dst == src) dst = (dst + 1) % nodes;
    flows[victim].links = {2 * src, 2 * dst + 1};
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

int run_grid(bool quick, const std::string& out_path) {
  struct Cell {
    int flows, links, events;
  };
  std::vector<Cell> grid;
  const std::vector<int> flow_counts =
      quick ? std::vector<int>{100, 1000} : std::vector<int>{100, 1000, 10000};
  const std::vector<int> link_counts =
      quick ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1000};
  for (int f : flow_counts)
    for (int l : link_counts)
      for (int e : {1, 16}) grid.push_back({f, l, e});

  std::filesystem::path path(out_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    // fopen below reports the actual failure if the directory is missing.
  }
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }

  std::fprintf(out, "{\n  \"benchmark\": \"net_solver_scaling\",\n");
  std::fprintf(out, "  \"unit\": \"ms per %s\",\n", "event batch");
  std::fprintf(out, "  \"cells\": [\n");
  bool first = true;
  bool target_met = true;
  long warm_attempts = 0;
  long warm_declines = 0;
  for (const auto& cell : grid) {
    // Links must be even (NIC pairs) and host at least 2 nodes.
    const int links = cell.links % 2 ? cell.links + 1 : cell.links;
    std::vector<Rate> capacity(static_cast<std::size_t>(links), 125e6);
    auto flows = make_flows(static_cast<std::size_t>(cell.flows), links, 11);

    auto flows_ref = flows;
    const double ref_ms =
        time_solves_ms(capacity, flows_ref, cell.events, false, 13);
    auto flows_inc = flows;
    const double inc_ms =
        time_solves_ms(capacity, flows_inc, cell.events, true, 13);
    const double speedup = inc_ms > 0 ? ref_ms / inc_ms : 0.0;

    std::printf("flows=%-6d links=%-5d events=%-3d ref=%9.3fms inc=%9.3fms speedup=%6.1fx\n",
                cell.flows, links, cell.events, ref_ms, inc_ms, speedup);
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out,
                 "    {\"flows\": %d, \"links\": %d, \"events\": %d, "
                 "\"reference_ms\": %.6f, \"incremental_ms\": %.6f, "
                 "\"speedup\": %.3f}",
                 cell.flows, links, cell.events, ref_ms, inc_ms, speedup);
    if (cell.flows >= 10000 && links >= 1000 && speedup < 10.0)
      target_met = false;
  }
  std::fprintf(out,
               "\n  ],\n  \"target\": \">=10x at 10k flows / 1k links\"\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (!quick && !target_met) {
    std::fprintf(stderr, "FAIL: speedup below 10x at 10k flows / 1k links\n");
    return 1;
  }
  return 0;
}

// ------------------------------------------------- component scaling
//
// Fixed total flow population partitioned into `components` disjoint
// sharing components (each with its own private links).  Every event
// rewires one flow inside one component — exactly what a contended
// arrival/departure does — and the rates are recomputed either with a
// full solve over all flows (the pre-component-scoping cost) or with a
// subset solve over the touched component only.  The component-scoped
// cost must track the component size, not the total population.

int run_components(bool quick, const std::string& out_path) {
  const int total_flows = quick ? 512 : 2048;
  const std::vector<int> component_counts =
      quick ? std::vector<int>{1, 8, 64} : std::vector<int>{1, 4, 16, 64, 256};
  const int events = quick ? 64 : 256;
  const int links_per_group = 32;  // 16 nodes x (up, down)

  std::filesystem::path path(out_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"net_solver_components\",\n");
  std::fprintf(out, "  \"unit\": \"ms per event\",\n  \"cells\": [\n");

  bool first = true;
  bool scales = true;
  double comp_ms_smallest = 0, comp_ms_largest = 0;
  for (const int components : component_counts) {
    const int group_size = total_flows / components;
    const int num_links = components * links_per_group;
    std::vector<Rate> capacity(static_cast<std::size_t>(num_links), 125e6);

    // Population: flows of group g use only g's private links.
    Rng rng(17);
    std::vector<FlowDemand> flows(static_cast<std::size_t>(total_flows));
    const auto rewire = [&](std::size_t f) {
      const int g = static_cast<int>(f) / group_size;
      const int nodes = links_per_group / 2;
      auto src = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
      auto dst = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
      if (dst == src) dst = (dst + 1) % nodes;
      flows[f].links = {g * links_per_group + 2 * src,
                        g * links_per_group + 2 * dst + 1};
    };
    for (std::size_t f = 0; f < flows.size(); ++f) rewire(f);

    MaxMinSolver solver;
    std::vector<Rate> rates;
    std::vector<FlowDemandView> views(static_cast<std::size_t>(group_size));
    std::vector<Rate> group_rates(static_cast<std::size_t>(group_size));

    // Full solves: every event re-solves the whole population.
    double full_ms = 0;
    {
      Rng ev(23);
      const auto start = std::chrono::steady_clock::now();
      for (int e = 0; e < events; ++e) {
        solver.solve(capacity, flows, rates);
        benchmark::DoNotOptimize(rates);
        rewire(static_cast<std::size_t>(
            ev.uniform_int(0, static_cast<std::int64_t>(flows.size()) - 1)));
      }
      const auto stop = std::chrono::steady_clock::now();
      full_ms =
          std::chrono::duration<double, std::milli>(stop - start).count() /
          events;
    }

    // Component-scoped solves: only the touched component is re-solved.
    double comp_ms = 0;
    {
      Rng ev(23);
      const auto start = std::chrono::steady_clock::now();
      for (int e = 0; e < events; ++e) {
        const auto victim = static_cast<std::size_t>(
            ev.uniform_int(0, static_cast<std::int64_t>(flows.size()) - 1));
        const std::size_t g = victim / static_cast<std::size_t>(group_size);
        for (int k = 0; k < group_size; ++k) {
          const auto& d =
              flows[g * static_cast<std::size_t>(group_size) +
                    static_cast<std::size_t>(k)];
          views[static_cast<std::size_t>(k)] = FlowDemandView{
              d.links.data(), static_cast<std::int32_t>(d.links.size()), d.cap};
        }
        solver.solve(capacity, views.data(), views.size(), group_rates.data());
        benchmark::DoNotOptimize(group_rates);
        rewire(victim);
      }
      const auto stop = std::chrono::steady_clock::now();
      comp_ms =
          std::chrono::duration<double, std::milli>(stop - start).count() /
          events;
    }

    const double speedup = comp_ms > 0 ? full_ms / comp_ms : 0.0;
    std::printf(
        "flows=%-5d components=%-4d comp_size=%-5d full=%8.4fms/ev "
        "comp=%8.4fms/ev speedup=%6.1fx\n",
        total_flows, components, group_size, full_ms, comp_ms, speedup);
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out,
                 "    {\"total_flows\": %d, \"components\": %d, "
                 "\"component_size\": %d, \"full_ms_per_event\": %.6f, "
                 "\"component_ms_per_event\": %.6f, \"speedup\": %.3f}",
                 total_flows, components, group_size, full_ms, comp_ms,
                 speedup);
    if (components == component_counts.front()) comp_ms_smallest = comp_ms;
    if (components == component_counts.back()) comp_ms_largest = comp_ms;
  }
  // Scaling gate: with many small components, a component-scoped event
  // must be far cheaper than with one global component — i.e. the cost
  // tracks component size, not total flows.
  if (comp_ms_largest * 4.0 > comp_ms_smallest) scales = false;
  std::fprintf(out,
               "\n  ],\n  \"target\": \"component-scoped event cost tracks "
               "component size, not total flows\"\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (!scales) {
    std::fprintf(stderr,
                 "FAIL: component-scoped solve cost does not shrink with "
                 "component size\n");
    return 1;
  }
  return 0;
}

// ------------------------------------------------- bipartite fast path
//
// Cold solves over flat-cluster populations (two links per flow): the
// general solver vs the BipartiteWaterfillSolver.  Each event rewires
// one flow so successive solves see fresh instances; both solvers pay a
// full solve per event — exactly the fluid network's cold-solve path.

int run_bipartite(bool quick, const std::string& out_path) {
  struct Cell {
    int flows, links;
  };
  std::vector<Cell> grid;
  const std::vector<int> flow_counts =
      quick ? std::vector<int>{100, 400} : std::vector<int>{100, 400, 1000, 4000};
  const std::vector<int> link_counts =
      quick ? std::vector<int>{64, 256} : std::vector<int>{64, 256};
  for (int f : flow_counts)
    for (int l : link_counts) grid.push_back({f, l});
  const int events = quick ? 64 : 256;

  std::filesystem::path path(out_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"net_solver_bipartite\",\n");
  std::fprintf(out, "  \"unit\": \"ms per cold solve\",\n  \"cells\": [\n");

  bool first = true;
  bool target_met = true;
  long warm_attempts = 0;
  long warm_declines = 0;
  for (const auto& cell : grid) {
    std::vector<Rate> capacity(static_cast<std::size_t>(cell.links), 125e6);
    auto flows = make_flows(static_cast<std::size_t>(cell.flows), cell.links, 29);
    std::vector<FlowDemandView> views(flows.size());
    const auto refresh_views = [&] {
      for (std::size_t f = 0; f < flows.size(); ++f)
        views[f] = FlowDemandView{flows[f].links.data(),
                                  static_cast<std::int32_t>(flows[f].links.size()),
                                  flows[f].cap};
    };
    const auto rewire = [&](Rng& rng) {
      const auto victim =
          static_cast<std::size_t>(rng.uniform_int(0, flows.size() - 1));
      const int nodes = cell.links / 2;
      auto src = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
      auto dst = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
      if (dst == src) dst = (dst + 1) % nodes;
      flows[victim].links = {2 * src, 2 * dst + 1};
    };

    // Equality check once per cell (not timed).
    {
      refresh_views();
      MaxMinSolver general;
      BipartiteWaterfillSolver bipartite;
      std::vector<Rate> a(flows.size()), b(flows.size());
      general.solve(capacity, views.data(), views.size(), a.data());
      bipartite.solve(capacity, views.data(), views.size(), b.data());
      for (std::size_t f = 0; f < flows.size(); ++f)
        if (a[f] != b[f]) {
          std::fprintf(stderr, "FAIL: bipartite rate mismatch at flow %zu\n", f);
          std::fclose(out);
          return 1;
        }
    }

    const auto time_mode = [&](bool use_bipartite) {
      // Best of two repetitions: a single OS hiccup on a busy (CI)
      // machine must not flip the gate.
      const auto saved = flows;
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 2; ++rep) {
        flows = saved;  // identical population and event replay per rep
        Rng rng(31);
        MaxMinSolver general;
        BipartiteWaterfillSolver bipartite;
        std::vector<Rate> rates(flows.size());
        const auto start = std::chrono::steady_clock::now();
        for (int e = 0; e < events; ++e) {
          refresh_views();
          if (use_bipartite)
            bipartite.solve(capacity, views.data(), views.size(), rates.data());
          else
            general.solve(capacity, views.data(), views.size(), rates.data());
          benchmark::DoNotOptimize(rates);
          rewire(rng);
        }
        const auto stop = std::chrono::steady_clock::now();
        best = std::min(
            best,
            std::chrono::duration<double, std::milli>(stop - start).count() /
                events);
      }
      return best;
    };
    const double general_ms = time_mode(false);
    const double bipartite_ms = time_mode(true);
    const double speedup = bipartite_ms > 0 ? general_ms / bipartite_ms : 0.0;

    std::printf(
        "flows=%-6d links=%-5d general=%8.4fms bipartite=%8.4fms "
        "speedup=%5.2fx\n",
        cell.flows, cell.links, general_ms, bipartite_ms, speedup);
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out,
                 "    {\"flows\": %d, \"links\": %d, \"general_ms\": %.6f, "
                 "\"bipartite_ms\": %.6f, \"speedup\": %.3f}",
                 cell.flows, cell.links, general_ms, bipartite_ms, speedup);
    // Cells under a few hundred flows time at single-microsecond scale
    // — reported, but too noisy to gate (especially on CI runners).
    if (cell.flows >= 400 && speedup < 1.0) target_met = false;
  }
  std::fprintf(out,
               "\n  ],\n  \"target\": \"bipartite beats the general solver on "
               "every flat-cluster cell with >= 400 flows\"\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (!target_met) {
    std::fprintf(stderr, "FAIL: bipartite slower than the general solver\n");
    return 1;
  }
  return 0;
}

// ----------------------------------------------------- warm-start grid
//
// Event-driven usage with warm starts: after one flow departs and one
// arrives, the cold engine re-solves the whole population while the
// warm engine undoes and replays only the affected saturation cascade.
//
// Traffic is *skewed* (quadratically towards low node ids), like real
// redistribution traffic where a few NICs carry whole p x q transfer
// sets: the hottest links saturate in the earliest rounds, and an
// arrival on an averagely-loaded link leaves all of those rounds
// untouched.  Uniform traffic would make every link equally loaded and
// push almost every arrival's divergence to round zero.

int run_warmstart(bool quick, const std::string& out_path) {
  struct Cell {
    int flows, links;
    bool capped;  ///< 30% of flows carry a binding TCP cap
  };
  std::vector<Cell> grid;
  const std::vector<int> flow_counts =
      quick ? std::vector<int>{100, 400} : std::vector<int>{100, 400, 1000, 4000};
  const std::vector<int> link_counts =
      quick ? std::vector<int>{64, 256} : std::vector<int>{64, 256};
  // Uncapped cells model low-latency clusters (the TCP-window bound
  // sits above the link bandwidth, fig2's regime, where warm starts
  // shine); capped cells add binding caps, whose early cap rounds make
  // departures cascade much deeper.
  for (int f : flow_counts)
    for (int l : link_counts)
      for (bool capped : {false, true}) grid.push_back({f, l, capped});
  const int events = quick ? 128 : 256;

  std::filesystem::path path(out_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"net_solver_warmstart\",\n");
  std::fprintf(out, "  \"unit\": \"ms per event\",\n  \"cells\": [\n");

  bool first = true;
  bool target_met = true;
  long warm_attempts = 0;
  long warm_declines = 0;
  for (const auto& cell : grid) {
    std::vector<Rate> capacity(static_cast<std::size_t>(cell.links), 125e6);
    const int nodes = cell.links / 2;
    const auto skewed_node = [&](Rng& rng) {
      const double u = rng.uniform(0.0, 1.0);
      return static_cast<std::int32_t>(
          std::min<double>(nodes - 1, nodes * u * u));
    };
    const auto random_demand = [&](Rng& rng) {
      FlowDemand d;
      const std::int32_t src = skewed_node(rng);
      std::int32_t dst = skewed_node(rng);
      if (dst == src) dst = (dst + 1) % nodes;
      d.links = {2 * src, 2 * dst + 1};
      if (cell.capped && rng.bernoulli(0.3)) d.cap = rng.uniform(1e6, 125e6);
      return d;
    };
    std::vector<FlowDemand> initial;
    {
      Rng rng(37);
      for (int f = 0; f < cell.flows; ++f) initial.push_back(random_demand(rng));
    }

    // Events alternate a single departure (even) with a single arrival
    // (odd) — the fluid network's ensure_rates sees exactly such
    // single-flow deltas between solves.  Both engines replay the
    // identical sequence; the population size oscillates by one.
    struct Event {
      bool departure;
      std::size_t victim;      // departure only
      FlowDemand arriving;     // arrival only
    };
    const auto make_event = [&](Rng& rng, int index, std::size_t population) {
      Event ev;
      ev.departure = index % 2 == 0;
      if (ev.departure)
        ev.victim =
            static_cast<std::size_t>(rng.uniform_int(0, population - 1));
      else
        ev.arriving = random_demand(rng);
      return ev;
    };

    const auto make_views = [](const std::vector<FlowDemand>& flows,
                               std::vector<FlowDemandView>& views) {
      views.clear();
      for (const auto& d : flows)
        views.push_back(FlowDemandView{
            d.links.data(), static_cast<std::int32_t>(d.links.size()), d.cap});
    };

    // Cold engine: one full subset solve per event.  Best of two
    // repetitions (the event replay is deterministic), so one OS
    // hiccup cannot flip the gate on a busy CI machine.
    double cold_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      auto flows = initial;
      Rng rng(41);
      MaxMinSolver solver;
      std::vector<FlowDemandView> views;
      std::vector<Rate> rates;
      const auto start = std::chrono::steady_clock::now();
      for (int e = 0; e < events; ++e) {
        auto ev = make_event(rng, e, flows.size());
        if (ev.departure) {
          flows[ev.victim] = std::move(flows.back());
          flows.pop_back();
        } else {
          flows.push_back(std::move(ev.arriving));
        }
        make_views(flows, views);
        rates.resize(flows.size());
        solver.solve(capacity, views.data(), views.size(), rates.data());
        benchmark::DoNotOptimize(rates);
      }
      const auto stop = std::chrono::steady_clock::now();
      cold_ms = std::min(
          cold_ms,
          std::chrono::duration<double, std::milli>(stop - start).count() /
              events);
    }

    // Warm engine: traced solve once, then solve_warm per event.  Best
    // of two deterministic repetitions, like the cold engine.  Run once
    // per replay policy: kPrefix (historical prefix undo with its
    // trace-fraction decline) and kCone (dependency-cone splice, the
    // engine default) — the cone column must win on deep-cascade cells
    // because it re-solves only the cone instead of declining.
    struct WarmRun {
      double ms = std::numeric_limits<double>::infinity();
      int fallbacks = 0;
    };
    const auto run_warm = [&](WarmMode mode) {
      WarmRun run;
      int fallbacks = 0;
    for (int rep = 0; rep < 2; ++rep) {
      fallbacks = 0;
      auto flows = initial;
      std::vector<std::int32_t> ids(flows.size());
      for (std::size_t f = 0; f < flows.size(); ++f)
        ids[f] = static_cast<std::int32_t>(f);
      std::int32_t next_id = static_cast<std::int32_t>(flows.size());
      Rng rng(41);
      MaxMinSolver solver;
      MaxMinWarmState state;
      std::vector<FlowDemandView> views;
      std::vector<Rate> rates(flows.size());
      std::vector<std::pair<std::int32_t, Rate>> changed;
      const auto start = std::chrono::steady_clock::now();
      make_views(flows, views);
      solver.solve(capacity, views.data(), views.size(), rates.data(), &state,
                   ids.data());
      for (int e = 0; e < events; ++e) {
        auto ev = make_event(rng, e, flows.size());
        bool ok;
        changed.clear();
        if (ev.departure) {
          const std::int32_t departing = ids[ev.victim];
          ok = solver.solve_warm(capacity, state, nullptr, 0, &departing, 1,
                                 changed, mode);
          flows[ev.victim] = std::move(flows.back());
          flows.pop_back();
          ids[ev.victim] = ids.back();
          ids.pop_back();
        } else {
          const std::int32_t arriving_id = next_id++;
          const FlowArrival arrival{
              arriving_id, ev.arriving.links.data(),
              static_cast<std::int32_t>(ev.arriving.links.size()),
              ev.arriving.cap};
          ok = solver.solve_warm(capacity, state, &arrival, 1, nullptr, 0,
                                 changed, mode);
          flows.push_back(std::move(ev.arriving));
          ids.push_back(arriving_id);
        }
        benchmark::DoNotOptimize(changed);
        if (!ok) {
          ++fallbacks;
          make_views(flows, views);
          rates.resize(flows.size());
          solver.solve(capacity, views.data(), views.size(), rates.data(),
                       &state, ids.data());
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      run.ms = std::min(
          run.ms,
          std::chrono::duration<double, std::milli>(stop - start).count() /
              events);
      run.fallbacks = fallbacks;
    }
      return run;
    };
    const WarmRun prefix = run_warm(WarmMode::kPrefix);
    const WarmRun cone = run_warm(WarmMode::kCone);

    const double speedup = cone.ms > 0 ? cold_ms / cone.ms : 0.0;
    const double cone_vs_prefix = cone.ms > 0 ? prefix.ms / cone.ms : 0.0;
    std::printf(
        "flows=%-6d links=%-5d capped=%d cold=%8.4fms prefix=%8.4fms "
        "cone=%8.4fms speedup=%5.2fx cone/prefix=%5.2fx fallbacks "
        "prefix=%d/%d cone=%d/%d\n",
        cell.flows, cell.links, cell.capped ? 1 : 0, cold_ms, prefix.ms,
        cone.ms, speedup, cone_vs_prefix, prefix.fallbacks, events,
        cone.fallbacks, events);
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out,
                 "    {\"flows\": %d, \"links\": %d, \"capped\": %s, "
                 "\"cold_ms\": %.6f, \"prefix_ms\": %.6f, "
                 "\"cone_ms\": %.6f, \"speedup\": %.3f, "
                 "\"cone_vs_prefix\": %.3f, \"prefix_fallbacks\": %d, "
                 "\"cone_fallbacks\": %d, \"events\": %d}",
                 cell.flows, cell.links, cell.capped ? "true" : "false",
                 cold_ms, prefix.ms, cone.ms, speedup, cone_vs_prefix,
                 prefix.fallbacks, cone.fallbacks, events);
    // Speed gates.  On spread contention (links >= 256 here; fig2's
    // regime, where a grelon-scale platform has thousands of NIC
    // links) a single-flow delta touches a small dependency cone and
    // the splice must beat a cold solve outright.  On dense few-link
    // populations every link is hot, so any delta's cone covers
    // essentially the whole trace and the splice degenerates to a
    // full replay plus undo overhead — parity with cold is the
    // theoretical floor there, and the bound below only catches a
    // pathological regression.  Cells under a few hundred flows time
    // at single-microsecond noise scale and are not speed-gated.
    if (cell.flows >= 400) {
      if (!cell.capped && cell.links >= 256 && speedup < 1.0)
        target_met = false;
      if (cone.ms > 1.6 * cold_ms) target_met = false;
    }
    warm_attempts += 2 * events;
    warm_declines += cone.fallbacks;
  }
  // Warm-coverage floor: the cone engine only declines on structurally
  // invalid deltas (unknown departure, linkless arrival), never on
  // cascade depth, so coverage across the grid must stay essentially
  // total.  Pinned here so a regression that silently reintroduces a
  // decline path fails CI's quick --warmstart run.
  const double coverage =
      warm_attempts > 0
          ? 1.0 - static_cast<double>(warm_declines) / warm_attempts
          : 0.0;
  constexpr double kCoverageFloor = 0.95;
  std::printf("cone warm coverage: %.4f (floor %.2f)\n", coverage,
              kCoverageFloor);
  std::fprintf(out,
               "\n  ],\n  \"cone_coverage\": %.6f,\n"
               "  \"coverage_floor\": %.2f,\n"
               "  \"target\": \"cone warm re-solves beat full cold solves "
               "on every uncapped spread-contention cell (>= 400 flows, "
               ">= 256 links), stay within 1.6x of cold on dense cells, "
               "and keep coverage above the pinned floor\"\n}\n",
               coverage, kCoverageFloor);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (!target_met) {
    std::fprintf(stderr, "FAIL: warm re-solve slower than a full cold solve\n");
    return 1;
  }
  if (coverage < kCoverageFloor) {
    std::fprintf(stderr, "FAIL: cone warm coverage %.4f below floor %.2f\n",
                 coverage, kCoverageFloor);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool grid = false;
  bool components = false;
  bool bipartite = false;
  bool warmstart = false;
  bool quick = false;
  std::string out_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--grid") == 0) {
      grid = true;
    } else if (std::strcmp(argv[i], "--components") == 0) {
      components = true;
    } else if (std::strcmp(argv[i], "--bipartite") == 0) {
      bipartite = true;
    } else if (std::strcmp(argv[i], "--warmstart") == 0) {
      warmstart = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out requires a path\n");
        return 1;
      }
      out_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (grid + components + bipartite + warmstart > 1) {
    std::fprintf(stderr,
                 "--grid, --components, --bipartite and --warmstart are "
                 "exclusive\n");
    return 1;
  }
  if (components)
    return run_components(
        quick,
        out_path.empty() ? "bench/results/net_solver_components.json"
                         : out_path);
  if (bipartite)
    return run_bipartite(quick,
                         out_path.empty()
                             ? "bench/results/net_solver_bipartite.json"
                             : out_path);
  if (warmstart)
    return run_warmstart(quick,
                         out_path.empty()
                             ? "bench/results/net_solver_warmstart.json"
                             : out_path);
  if (grid)
    return run_grid(quick, out_path.empty()
                               ? "bench/results/net_solver_scaling.json"
                               : out_path);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
