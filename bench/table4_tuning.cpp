// Reproduces Table IV: the tuned (mindelta, maxdelta, minrho) values
// per application family and cluster, obtained by sweeping the
// parameter grids of Section IV-C and keeping the combination with the
// lowest average makespan relative to HCPA.
//
// This is the most expensive bench (a full parameter sweep per
// family x cluster); at reduced scale it runs the same sweeps on the
// scaled-down corpus.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "exp/tuning.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);

  bench::heading("Table IV: tuned (mindelta, maxdelta, minrho)");
  Table table({"family \\ cluster", "chti", "grillon", "grelon"});
  for (DagFamily family : {DagFamily::FFT, DagFamily::Strassen,
                           DagFamily::Layered, DagFamily::Irregular}) {
    auto corpus = bench::cap_per_family(bench::make_family(family, cfg), cfg, 6);
    std::vector<std::string> row{to_string(family)};
    for (const Cluster& cluster : grid5000::all()) {
      TunedParams t = tune(corpus, cluster, cfg.threads);
      row.push_back("(" + fmt(t.mindelta, 2) + ", " + fmt(t.maxdelta, 2) +
                    ", " + fmt(t.minrho, 2) + ")");
      std::printf("  tuned %-9s on %-8s: mindelta=%s maxdelta=%s minrho=%s\n",
                  to_string(family).c_str(), cluster.name().c_str(),
                  fmt(t.mindelta, 2).c_str(), fmt(t.maxdelta, 2).c_str(),
                  fmt(t.minrho, 2).c_str());
    }
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper Table IV (chti/grillon/grelon):\n"
      "    FFT      (-.5,1,.2)   (-.5,1,.2)   (-.25,.75,.4)\n"
      "    Strassen (-.25,.5,.5) (0,1,.4)     (-.25,1,.5)\n"
      "    Layered  (-.5,1,.2)   (-.25,1,.2)  (-.5,1,.2)\n"
      "    Random   (-.75,1,.5)  (-.75,1,.5)  (-.75,1,.4)\n"
      "  exact cell values depend on the generated corpus; the shape to\n"
      "  check is maxdelta ~ 1, negative mindelta, small-to-mid minrho.\n");
  return 0;
}
