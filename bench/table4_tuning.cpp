// Reproduces Table IV: the tuned (mindelta, maxdelta, minrho) values
// per application family and cluster, obtained by sweeping the
// parameter grids of Section IV-C and keeping the combination with the
// lowest average makespan relative to HCPA.
//
// This is the most expensive bench (a full parameter sweep per
// family x cluster); at reduced scale it runs the same sweeps on the
// scaled-down corpus.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/table4.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("table4", rats::bench::parse_args(argc, argv));
}
