// serve_throughput — scenarios/second through the `rats serve` daemon
// at 1/2/4 workers.
//
// For each worker count the bench forks a daemon on a private socket,
// submits a batch of identical jobs (keeping the bounded queue fed so
// every worker always has a shard), waits for completion, and reads
// the daemon's own runs_completed counter against the wall clock.  The
// merged reports are byte-compared against a direct single-process run
// first — a throughput number for a service that returns different
// bytes would be meaningless.
//
// Results land in bench/results/serve_throughput.json (hand-checked;
// see --out).  Scaling expectations depend on the machine: worker
// processes only help when there are cores to run them on, so the
// entry records the container's core count next to the numbers.
//
// Usage: serve_throughput [--jobs N] [--runs-per-job N] [--out FILE]

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"
#include "report/render.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

namespace rats {
namespace {

using Clock = std::chrono::steady_clock;

/// One job's spec: `entries` workload entries x 3 algorithms.
std::string bench_spec(int entries) {
  return strf(
      "[scenario]\n"
      "name = \"serve-bench\"\n"
      "kind = \"experiment\"\n"
      "[platform]\n"
      "name = \"mini\"\n"
      "nodes = 8\n"
      "[workload]\n"
      "source = \"generate\"\n"
      "generator = \"layered\"\n"
      "count = %d\n"
      "tasks = 300\n"
      "[algorithm]\n"
      "name = \"HCPA\"\n"
      "kind = \"hcpa\"\n"
      "[algorithm]\n"
      "name = \"delta\"\n"
      "kind = \"delta\"\n"
      "[algorithm]\n"
      "name = \"time-cost\"\n"
      "kind = \"time-cost\"\n",
      entries);
}

pid_t spawn_daemon(const serve::DaemonOptions& options) {
  std::fflush(stdout);  // don't let the child inherit buffered output
  const pid_t pid = fork();
  RATS_REQUIRE(pid >= 0, "fork failed");
  if (pid == 0) {
    ::freopen("/dev/null", "w", stdout);
    ::freopen("/dev/null", "w", stderr);
    _exit(serve::run_daemon(options));
  }
  for (int i = 0; i < 400; ++i) {
    try {
      serve::request(options.socket_path, "{\"cmd\":\"ping\"}");
      return pid;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  throw Error("daemon never came up on " + options.socket_path);
}

struct Measurement {
  int workers = 0;
  double seconds = 0;
  double scenarios_per_sec = 0;
  std::int64_t runs = 0;
};

Measurement measure(int workers, int jobs, const std::string& spec_text,
                    const std::string& want_json) {
  serve::DaemonOptions options;
  options.socket_path =
      strf("/tmp/rats_serve_bench_%d_%d.sock", static_cast<int>(getpid()),
           workers);
  options.workers = workers;
  options.queue_capacity = static_cast<std::size_t>(jobs) + 1;
  const pid_t pid = spawn_daemon(options);

  const Clock::time_point t0 = Clock::now();
  // Submit the whole batch up front so the queue never starves a
  // worker, then wait for each job and byte-check its report.
  std::vector<std::string> job_ids;
  for (int j = 0; j < jobs; ++j) {
    const json::Value reply = serve::request_json(
        options.socket_path,
        std::string("{\"cmd\":\"submit\",") +
            serve::field("spec", spec_text) + "}");
    RATS_REQUIRE(reply.get_int("ok") == 1,
                 "submit rejected: " + reply.get_string("error", "?"));
    job_ids.push_back(reply.require_string("job", "submit reply"));
  }
  for (const std::string& job : job_ids) {
    while (true) {
      const json::Value status = serve::request_json(
          options.socket_path,
          std::string("{\"cmd\":\"status\",") + serve::field("job", job) +
              "}");
      const std::string state = status.get_string("state");
      RATS_REQUIRE(state != "failed",
                   job + " failed: " + status.get_string("error", "?"));
      if (state == "done") break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const json::Value result = serve::request_json(
        options.socket_path,
        std::string("{\"cmd\":\"result\",") + serve::field("job", job) + "}");
    RATS_REQUIRE(result.require_string("report", "result") == want_json,
                 "served report is not byte-identical to the direct run");
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const json::Value stats =
      serve::request_json(options.socket_path, "{\"cmd\":\"stats\"}");
  Measurement m;
  m.workers = workers;
  m.seconds = seconds;
  m.runs = stats.get_int("runs_completed");
  m.scenarios_per_sec = static_cast<double>(m.runs) / seconds;
  RATS_REQUIRE(stats.get_int("jobs_failed") == 0, "bench jobs failed");

  serve::request(options.socket_path, "{\"cmd\":\"shutdown\"}");
  int status = 0;
  waitpid(pid, &status, 0);
  RATS_REQUIRE(WIFEXITED(status) && WEXITSTATUS(status) == 0,
               "daemon did not shut down cleanly");
  return m;
}

}  // namespace
}  // namespace rats

int main(int argc, char** argv) {
  using namespace rats;
  int jobs = 8, entries = 12;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" && i + 1 < argc) jobs = std::atoi(argv[++i]);
    else if (a == "--runs-per-job" && i + 1 < argc)
      entries = std::atoi(argv[++i]);
    else if (a == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--jobs N] [--runs-per-job N] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  const std::string spec_text = bench_spec(entries);
  const std::string want = report::render_json(scenario::build_report(
      scenario::parse_scenario_string(spec_text, "<bench>")));
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("serve_throughput: %d jobs x %d entries x 3 algorithms, "
              "%u core(s)\n",
              jobs, entries, cores);

  std::string json = "{\n  \"benchmark\": \"serve_throughput --jobs " +
                     std::to_string(jobs) + " --runs-per-job " +
                     std::to_string(entries) +
                     "\",\n  \"unit\": \"scenarios per second (daemon "
                     "runs_completed / wall clock)\",\n  \"cores\": " +
                     std::to_string(cores) + ",\n  \"workers\": [\n";
  bool first = true;
  for (const int workers : {1, 2, 4}) {
    const Measurement m = measure(workers, jobs, spec_text, want);
    std::printf("  workers=%d  %6.2f s  %7.2f scenarios/s  (%lld runs)\n",
                m.workers, m.seconds, m.scenarios_per_sec,
                static_cast<long long>(m.runs));
    json += strf("%s    {\"workers\": %d, \"seconds\": %.2f, "
                 "\"scenarios_per_sec\": %.2f}",
                 first ? "" : ",\n", m.workers, m.seconds,
                 m.scenarios_per_sec);
    first = false;
  }
  json += "\n  ]\n}\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << json;
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}
