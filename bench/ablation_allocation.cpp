// Ablation: the allocation procedure (Section II-C).
//
// The paper builds RATS on HCPA's allocation because HCPA produces
// shorter schedules than CPA and applies more broadly than MCPA.  This
// bench feeds the same baseline list-scheduling mapper with the three
// allocation procedures and compares makespans, reproducing that
// design choice.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::cap_per_family(bench::make_corpus(cfg), cfg, 12);

  std::vector<AlgoSpec> algos;
  for (SchedulerKind kind :
       {SchedulerKind::Hcpa, SchedulerKind::Cpa, SchedulerKind::Mcpa}) {
    SchedulerOptions o;
    o.kind = kind;
    algos.push_back({to_string(kind), o});
  }

  bench::heading("Ablation: allocation procedure feeding the same mapper");
  Table table({"cluster", "algorithm", "avg relative makespan vs HCPA",
               "best in (combined)"});
  for (const Cluster& cluster : grid5000::all()) {
    std::printf("  running corpus on %s...\n", cluster.name().c_str());
    auto data = run_experiment(corpus, cluster, algos, cfg.threads);
    for (std::size_t a = 0; a < algos.size(); ++a) {
      auto series = relative_series(data, a, 0, /*makespan=*/true);
      auto s = summarize_relative(series);
      auto comb = combined_compare(data, a);
      table.add_row({a == 0 ? cluster.name() : "", data.algo_names[a],
                     fmt(s.mean_ratio, 3), fmt_percent(comb.better, 1)});
    }
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  expectation (prior work, N'takpe et al.): HCPA at least as good\n"
      "  as CPA overall; MCPA competitive on regular/layered DAGs only.\n");
  return 0;
}
