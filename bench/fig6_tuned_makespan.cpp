// Reproduces Figure 6: makespan of RATS (delta and time-cost) relative
// to HCPA on the grillon cluster using the tuned parameters of
// Table IV (each application family runs with its own tuned values).
//
// Paper result: tuning helps delta the most (from ~9% to ~13% shorter
// on grillon); time-cost improves only slightly since 0.5 was already
// a good minrho.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rats;

int main(int argc, char** argv) {
  auto cfg = bench::parse_args(argc, argv);
  auto corpus = bench::make_corpus(cfg);
  Cluster cluster = grid5000::grillon();

  auto data = bench::run_tuned_experiment(corpus, cluster, cfg.threads);

  bench::heading("Figure 6: relative makespan vs HCPA, tuned parameters, " +
                 cluster.name());
  Table table({"strategy", "avg relative makespan", "avg improvement",
               "shorter in", "equal in"});
  for (std::size_t algo : {std::size_t{1}, std::size_t{2}}) {
    auto series = relative_series(data, algo, 0, /*makespan=*/true);
    auto s = summarize_relative(series);
    table.add_row({data.algo_names[algo], fmt(s.mean_ratio, 3),
                   fmt_percent(1.0 - s.mean_ratio, 1),
                   fmt_percent(s.fraction_better, 1),
                   fmt_percent(s.fraction_equal, 1)});
    bench::print_sorted_curve(data.algo_names[algo], series);
  }
  std::printf("%s", table.to_text().c_str());
  if (cfg.csv) std::printf("%s", table.to_csv().c_str());
  std::printf(
      "\n  paper: tuned delta ~13%% shorter than HCPA on grillon (9%% "
      "naive);\n         time-cost improves only slightly over naive.\n");
  return 0;
}
