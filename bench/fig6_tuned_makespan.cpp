// Reproduces Figure 6: makespan of RATS (delta and time-cost) relative
// to HCPA on the grillon cluster using the tuned parameters of
// Table IV (each application family runs with its own tuned values).
//
// Paper result: tuning helps delta the most (from ~9% to ~13% shorter
// on grillon); time-cost improves only slightly since 0.5 was already
// a good minrho.
//
// Thin front end over the scenario engine: identical to
// `rats run scenarios/fig6.rats` (see src/scenario/).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return rats::bench::run_kind("fig6", rats::bench::parse_args(argc, argv));
}
