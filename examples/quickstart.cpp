// Quickstart: build a small mixed-parallel application, schedule it on
// a Grid'5000 cluster with HCPA and both RATS strategies, and simulate
// each schedule with network contention.
//
//   $ ./quickstart
//
// This walks through the whole public API surface:
//   TaskGraph -> build_schedule() -> simulate().
#include <cstdio>

#include "platform/grid5000.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace rats;

  // A small fork-join application: one producer, four parallel
  // workers, one consumer.  Each task works on 16M double-precision
  // elements (128 MiB) and performs 128 operations per element; 10% of
  // each task is non-parallelizable.
  TaskGraph app;
  const double m = 16.0 * 1024 * 1024;
  const TaskId split = app.add_task("split", m, 128.0, 0.10);
  std::vector<TaskId> workers;
  for (int i = 0; i < 4; ++i) {
    const TaskId w =
        app.add_task("worker" + std::to_string(i), m, 256.0, 0.10);
    app.add_edge(split, w, m * kBytesPerElement);
    workers.push_back(w);
  }
  const TaskId join = app.add_task("join", m, 128.0, 0.10);
  for (TaskId w : workers) app.add_edge(w, join, m * kBytesPerElement);

  const Cluster cluster = grid5000::grillon();
  std::printf("application: %d tasks, %d edges\n", app.num_tasks(),
              app.num_edges());
  std::printf("platform:    %s (%d nodes @ %.3f GFlop/s)\n\n",
              cluster.name().c_str(), cluster.num_nodes(),
              cluster.node_speed() / Giga);

  for (SchedulerKind kind : {SchedulerKind::Hcpa, SchedulerKind::RatsDelta,
                             SchedulerKind::RatsTimeCost}) {
    SchedulerOptions options;
    options.kind = kind;
    const Schedule schedule = build_schedule(app, cluster, options);
    const SimulationResult result = simulate(app, schedule, cluster);

    std::printf("%-15s makespan %7.2f s   work %9.1f proc*s   network %7.1f MiB\n",
                to_string(kind).c_str(), result.makespan, result.total_work,
                result.network_bytes / MiB);
    for (TaskId t = 0; t < app.num_tasks(); ++t) {
      const auto& timing = result.timeline[static_cast<std::size_t>(t)];
      std::printf("    %-9s procs=%-3zu start=%7.2f finish=%7.2f\n",
                  app.task(t).name.c_str(), schedule.of(t).procs.size(),
                  timing.start, timing.finish);
    }
    std::printf("\n");
  }
  return 0;
}
