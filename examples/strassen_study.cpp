// Strassen study: schedule the 25-task Strassen matrix-multiplication
// workflow on one cluster, then tune the RATS parameters for it with
// the library's sweep utilities (the per-application tuning of the
// paper's Section IV-C) and compare naive vs tuned RATS.
//
//   $ ./strassen_study [samples] [seed]
//
// Demonstrates: corpus building for one family, reference makespans,
// the (mindelta, maxdelta) and minrho sweeps, and applying tuned
// parameters.
#include <cstdio>
#include <cstdlib>

#include "daggen/corpus.hpp"
#include "exp/runner.hpp"
#include "exp/tuning.hpp"
#include "platform/grid5000.hpp"

int main(int argc, char** argv) {
  using namespace rats;
  CorpusOptions copt;
  copt.kernel_samples = argc > 1 ? std::atoi(argv[1]) : 10;
  copt.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const Cluster cluster = grid5000::grillon();
  const auto corpus = build_family(DagFamily::Strassen, copt);
  std::printf("Strassen corpus: %zu samples on %s\n\n", corpus.size(),
              cluster.name().c_str());

  // Sweep the delta parameters (Figure 4 methodology).
  const DeltaSweep ds = sweep_delta(corpus, cluster);
  std::printf("delta sweep: best (mindelta=%.2f, maxdelta=%.2f) -> "
              "avg %.3f of HCPA\n",
              ds.best_mindelta, ds.best_maxdelta, ds.best_value);

  // Sweep minrho (Figure 5 methodology).
  const RhoSweep rs = sweep_rho(corpus, cluster);
  std::printf("rho sweep:   best minrho=%.2f -> avg %.3f of HCPA "
              "(packing on)\n\n",
              rs.best_minrho, rs.best_value);

  // Compare naive vs tuned on each sample.
  SchedulerOptions hcpa;
  hcpa.kind = SchedulerKind::Hcpa;

  SchedulerOptions naive_delta;
  naive_delta.kind = SchedulerKind::RatsDelta;

  SchedulerOptions tuned_delta = naive_delta;
  tuned_delta.rats.mindelta = ds.best_mindelta;
  tuned_delta.rats.maxdelta = ds.best_maxdelta;

  SchedulerOptions naive_tc;
  naive_tc.kind = SchedulerKind::RatsTimeCost;

  SchedulerOptions tuned_tc = naive_tc;
  tuned_tc.rats.minrho = rs.best_minrho;

  std::printf("%-28s %10s %12s %12s\n", "sample", "HCPA (s)", "delta naive",
              "delta tuned");
  double sum_naive = 0, sum_tuned = 0;
  for (const CorpusEntry& entry : corpus) {
    const double ref =
        run_scenario(entry.graph, cluster, hcpa).makespan;
    const double mn = run_scenario(entry.graph, cluster, naive_delta).makespan;
    const double mt = run_scenario(entry.graph, cluster, tuned_delta).makespan;
    sum_naive += mn / ref;
    sum_tuned += mt / ref;
    std::printf("%-28s %10.2f %11.3fx %11.3fx\n", entry.name.c_str(), ref,
                mn / ref, mt / ref);
  }
  std::printf("\naverage relative makespan: naive %.3f, tuned %.3f\n",
              sum_naive / static_cast<double>(corpus.size()),
              sum_tuned / static_cast<double>(corpus.size()));
  return 0;
}
