// Custom platform: define your own cluster (flat or hierarchical),
// generate an irregular scientific workflow, and study how topology
// changes scheduling outcomes — the cross-cabinet contention of
// hierarchical networks is exactly where redistribution awareness
// pays off.
//
//   $ ./custom_platform [tasks] [seed]
//
// Demonstrates: Cluster::flat / Cluster::hierarchical, random DAG
// generation with explicit parameters, and per-schedule network-byte
// accounting.
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "daggen/random_dag.hpp"
#include "platform/cluster.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace rats;
  const int tasks = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Two 64-node platforms with identical compute power but different
  // interconnects: one flat switch vs 4 cabinets of 16 nodes behind
  // shared uplinks.
  const Cluster flat = Cluster::flat("flat64", 64, 3.0 * Giga,
                                     100e-6, kGigabitPerSecond);
  const Cluster hier = Cluster::hierarchical(
      "hier64", /*cabinets=*/4, /*nodes_per_cabinet=*/16, 3.0 * Giga,
      100e-6, kGigabitPerSecond, /*uplink latency=*/100e-6,
      /*uplink bandwidth=*/kGigabitPerSecond);

  // An irregular workflow with level-skipping dependencies.
  RandomDagParams params;
  params.num_tasks = tasks;
  params.width = 0.5;
  params.density = 0.8;
  params.regularity = 0.2;
  params.jump = 2;
  Rng rng(seed);
  const TaskGraph app = generate_irregular_dag(params, rng);
  std::printf("workflow: %d tasks, %d edges (irregular, jump=2)\n\n",
              app.num_tasks(), app.num_edges());

  for (const Cluster* cluster : {&flat, &hier}) {
    std::printf("--- %s (%d nodes, %s) ---\n", cluster->name().c_str(),
                cluster->num_nodes(),
                cluster->hierarchical_topology() ? "hierarchical" : "flat");
    double hcpa = 0;
    for (SchedulerKind kind : {SchedulerKind::Hcpa, SchedulerKind::RatsDelta,
                               SchedulerKind::RatsTimeCost}) {
      SchedulerOptions options;
      options.kind = kind;
      const Schedule schedule = build_schedule(app, *cluster, options);
      const SimulationResult r = simulate(app, schedule, *cluster);
      if (kind == SchedulerKind::Hcpa) hcpa = r.makespan;
      std::printf("  %-14s makespan %8.2f s (%.3fx HCPA)   net %8.1f MiB\n",
                  to_string(kind).c_str(), r.makespan, r.makespan / hcpa,
                  r.network_bytes / MiB);
    }
    std::printf("\n");
  }
  std::printf(
      "Note how the hierarchical platform amplifies redistribution cost\n"
      "(cross-cabinet flows share uplinks), widening the RATS advantage.\n");
  return 0;
}
