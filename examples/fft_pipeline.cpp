// FFT workflow study: schedule FFT task graphs of growing size
// (k = 2, 4, 8, 16 data points -> 5, 15, 39, 95 tasks) on the three
// Grid'5000 clusters with every scheduler in the library, and report
// makespan, work and network traffic side by side.
//
//   $ ./fft_pipeline [seed]
//
// Demonstrates: kernel DAG generation, per-algorithm scheduling,
// contention simulation, and how RATS's advantage evolves with
// application size and cluster size.
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "platform/grid5000.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace rats;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  const SchedulerKind kinds[] = {SchedulerKind::Cpa, SchedulerKind::Hcpa,
                                 SchedulerKind::RatsDelta,
                                 SchedulerKind::RatsTimeCost};

  for (const Cluster& cluster : grid5000::all()) {
    std::printf("=== %s (%d nodes @ %.3f GFlop/s) ===\n",
                cluster.name().c_str(), cluster.num_nodes(),
                cluster.node_speed() / Giga);
    for (int k : {2, 4, 8, 16}) {
      Rng rng(seed + static_cast<std::uint64_t>(k));
      const TaskGraph fft = generate_fft_dag(k, rng);
      std::printf("  FFT k=%-2d (%d tasks):\n", k, fft.num_tasks());

      double hcpa_makespan = 0;
      for (SchedulerKind kind : kinds) {
        SchedulerOptions options;
        options.kind = kind;
        const Schedule schedule = build_schedule(fft, cluster, options);
        const SimulationResult r = simulate(fft, schedule, cluster);
        if (kind == SchedulerKind::Hcpa) hcpa_makespan = r.makespan;
        std::printf(
            "    %-14s makespan %8.2f s  (vs HCPA %5.2fx)  work %9.1f  "
            "net %8.1f MiB\n",
            to_string(kind).c_str(), r.makespan,
            hcpa_makespan > 0 ? r.makespan / hcpa_makespan : 1.0,
            r.total_work, r.network_bytes / MiB);
      }
    }
    std::printf("\n");
  }
  return 0;
}
