// Redistribution explorer: inspect the 1-D block redistribution
// machinery directly — communication matrices, self-communication
// maximization, contention-free estimates, and the actual transfer
// time when the flows contend on a real cluster topology.
//
//   $ ./redistribution_explorer [bytes_mib]
//
// Demonstrates: Redistribution::plan, estimate_redistribution_time,
// and driving FluidNetwork by hand.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "net/fluid_network.hpp"
#include "platform/grid5000.hpp"
#include "redist/block_redistribution.hpp"
#include "redist/estimate.hpp"

using namespace rats;

namespace {

// Simulates the redistribution's transfers as concurrent fluid flows
// and returns the completion time of the last one.
Seconds simulate_transfers(const Cluster& cluster, const Redistribution& r) {
  FluidNetwork net(cluster);
  for (const Transfer& t : r.transfers()) net.open_flow(t.src, t.dst, t.bytes);
  while (auto next = net.next_event_time()) net.advance_to(*next);
  return net.now();
}

void explore(const Cluster& cluster, Bytes bytes, int p, int q, int overlap) {
  std::vector<NodeId> senders, receivers;
  for (int i = 0; i < p; ++i) senders.push_back(i);
  for (int i = 0; i < q; ++i)
    receivers.push_back(p - overlap + i);  // share `overlap` nodes
  const Redistribution r = Redistribution::plan(bytes, senders, receivers);
  const Seconds est = estimate_redistribution_time(cluster, r);
  const Seconds act = simulate_transfers(cluster, r);
  std::printf(
      "  p=%-3d q=%-3d overlap=%-3d transfers=%-4zu self=%6.1f MiB "
      "remote=%7.1f MiB est=%6.3f s actual=%6.3f s\n",
      p, q, overlap, r.transfers().size(), r.self_bytes() / MiB,
      r.remote_bytes() / MiB, est, act);
}

}  // namespace

int main(int argc, char** argv) {
  const double mib = argc > 1 ? std::atof(argv[1]) : 512.0;
  const Bytes bytes = mib * MiB;

  const Cluster grillon = grid5000::grillon();
  std::printf("redistributing %.0f MiB on %s\n\n", mib,
              grillon.name().c_str());

  std::printf("disjoint sender/receiver sets:\n");
  explore(grillon, bytes, 4, 5, 0);
  explore(grillon, bytes, 8, 12, 0);
  explore(grillon, bytes, 16, 24, 0);

  std::printf("\noverlapping sets (self communication kicks in):\n");
  explore(grillon, bytes, 8, 8, 4);
  explore(grillon, bytes, 8, 8, 8);  // identical sets: zero cost
  explore(grillon, bytes, 16, 12, 8);

  std::printf("\nhierarchical cluster (grelon): cross-cabinet uplinks "
              "contend:\n");
  const Cluster grelon = grid5000::grelon();
  // Senders in cabinet 0, receivers spanning cabinets 1-2: every
  // transfer crosses the shared uplinks.
  std::vector<NodeId> senders, receivers;
  for (int i = 0; i < 12; ++i) senders.push_back(i);          // cabinet 0
  for (int i = 0; i < 12; ++i) receivers.push_back(24 + i);   // cabinet 1
  const Redistribution cross =
      Redistribution::plan(bytes, senders, receivers);
  std::printf(
      "  cabinet0 -> cabinet1: est=%.3f s actual=%.3f s (uplink shared by "
      "%zu transfers)\n",
      estimate_redistribution_time(grelon, cross),
      simulate_transfers(grelon, cross), cross.transfers().size());

  // Same shape, but receivers inside the senders' cabinet: no uplink.
  std::vector<NodeId> local_recv;
  for (int i = 12; i < 24; ++i) local_recv.push_back(i);
  const Redistribution local =
      Redistribution::plan(bytes, senders, local_recv);
  std::printf(
      "  cabinet0 -> cabinet0: est=%.3f s actual=%.3f s (NIC-bound only)\n",
      estimate_redistribution_time(grelon, local),
      simulate_transfers(grelon, local));
  return 0;
}
