// `rats` — the command-line driver for the scenario engine.
//
//   rats run <scenario.rats> [--trace out.jsonl] [--threads N]
//                            [--csv] [--full] [--check N] [--timeout SECS]
//                            [--metrics m.json] [--profile spans.json]
//                            [--progress]
//   rats verify <trace.jsonl> [--threads N]
//   rats emit (<scenario.rats> | --kind <kind>)
//   rats kinds
//   rats fuzz [--quick] [--count N] [--seed S] [--timeout SECS]
//             [--regress-dir DIR] [--index I] [--emit] [--no-minimize]
//   rats serve --socket PATH [--workers N] [--queue N] [...]
//   rats submit <scenario.rats> --socket PATH [--out FILE] [...]
//   rats sched [legacy options]      (the original one-shot scheduler CLI)
//
// `run` executes a declarative scenario file (grammar in
// src/scenario/parser.hpp; cookbook in README.md).  `--trace` writes a
// structured JSON-lines simulation trace that `verify` re-simulates
// and byte-diffs — a whole-stack determinism check.  `emit` prints the
// canonical form of a scenario file (or of a registry kind's default
// spec, which is how the checked-in scenarios/*.rats were generated).
//
// The old direct scheduling interface survives as the `sched`
// subcommand (also used by examples/docs):
//   rats sched --generate fft:8 --platform flat:64:3.0 --algo delta \
//              --mindelta -0.5 --maxdelta 1 --dot fft.dot
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "fuzz/driver.hpp"
#include "common/rng.hpp"
#include "daggen/kernels.hpp"
#include "daggen/random_dag.hpp"
#include "exp/autotune.hpp"
#include "exp/runner.hpp"
#include "io/workflow_io.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "platform/grid5000.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "sched/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"

using namespace rats;

namespace {

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: rats <command> [options]\n"
      "  run <scenario.rats>     execute a scenario file (one simulation\n"
      "                          pass feeds report, trace and artefacts)\n"
      "      --trace FILE        stream a JSON-lines simulation trace\n"
      "      --report-csv FILE   write the CSV report rendering\n"
      "      --report-json FILE  write the JSON report rendering\n"
      "      --threads N         worker threads (0 = hardware)\n"
      "      --csv               also emit CSV after each table\n"
      "      --full              paper-scale corpus\n"
      "      --check N           run the scenario N times and fail if\n"
      "                          any output byte differs\n"
      "      --timeout SECS      abort (exit 124) past this wall clock\n"
      "      --metrics FILE      write a machine-readable metrics snapshot\n"
      "                          (and embed counters in report artefacts)\n"
      "      --profile FILE      write pipeline phase spans as Chrome\n"
      "                          trace-event JSON (chrome://tracing)\n"
      "      --progress          live stderr heartbeat (runs, rate, ETA)\n"
      "  verify <trace.jsonl>    re-simulate a trace and byte-diff it\n"
      "      --threads N         worker threads for the replay\n"
      "  emit <scenario.rats>    print the canonical form of a scenario\n"
      "  emit --kind <kind>      print a registry kind's default scenario\n"
      "  kinds                   list registered scenario kinds\n"
      "  fuzz                    randomized validation campaign: generate\n"
      "                          seeded specs, run the invariant oracle\n"
      "                          battery on each in an isolated child,\n"
      "                          minimize failures into scenarios/regress/\n"
      "      --quick             100-spec CI tier (default 250)\n"
      "      --count N           specs to run\n"
      "      --seed S            campaign seed (default 1)\n"
      "      --timeout SECS      per-spec watchdog (default 30)\n"
      "      --regress-dir DIR   where failing repros are written\n"
      "      --index I           run only spec I of the campaign\n"
      "      --emit              print the generated specs, run nothing\n"
      "      --no-minimize       write repros without delta-debugging\n"
      "      --progress          live stderr heartbeat (specs, rate, ETA)\n"
      "      --metrics FILE      write a campaign metrics snapshot\n"
      "  serve                   scenario service: pre-forked workers run\n"
      "                          submitted specs in shards; merged reports\n"
      "                          are byte-identical to `rats run`\n"
      "      --socket PATH       unix socket to listen on (required)\n"
      "      --workers N         worker processes (default 2)\n"
      "      --queue N           max unfinished jobs before submits are\n"
      "                          rejected with a retry hint (default 8)\n"
      "      --shard-timeout S   kill + retry a shard past this (default 300)\n"
      "      --retry-after MS    backpressure hint to clients (default 250)\n"
      "      --shards N          shards per job (default: worker count)\n"
      "      --metrics FILE      write an obs snapshot at shutdown\n"
      "      --progress          stderr line per submit/shard completion\n"
      "  submit <scenario.rats>  submit a spec to a running daemon, wait,\n"
      "                          print (or --out) the report JSON\n"
      "      --socket PATH       daemon socket (required)\n"
      "      --out FILE          write the report JSON here\n"
      "      --timeout SECS      overall wait budget (default 600)\n"
      "      --progress          stderr status while waiting\n"
      "      --crash-test        fault hook: first shard kills its worker\n"
      "  submit --stats          print the daemon's stats JSON\n"
      "  submit --shutdown       stop the daemon\n"
      "  sched [options]         one-shot scheduling (rats sched --help)\n");
  std::exit(code);
}

[[noreturn]] void sched_usage(int code) {
  std::printf(
      "usage: rats sched [options]\n"
      "  --dag FILE            workflow file (see src/io/workflow_io.hpp)\n"
      "  --generate SPEC       fft:<k> | strassen | layered:<n> | irregular:<n>\n"
      "  --platform P          chti | grillon | grelon | flat:<nodes>:<gflops>\n"
      "  --algo A              cpa | mcpa | hcpa | delta | time-cost |\n"
      "                        auto-delta | auto-time-cost\n"
      "  --mindelta X --maxdelta X --minrho X --no-packing   RATS knobs\n"
      "  --seed S              generator seed (default 42)\n"
      "  --no-contention       simulate without link contention\n"
      "  --dot FILE            write the DAG as Graphviz DOT\n"
      "  --save FILE           write the workflow back as text\n");
  std::exit(code);
}

DagFamily family_of(const std::string& spec) {
  if (spec.rfind("fft", 0) == 0) return DagFamily::FFT;
  if (spec.rfind("strassen", 0) == 0) return DagFamily::Strassen;
  if (spec.rfind("layered", 0) == 0) return DagFamily::Layered;
  return DagFamily::Irregular;
}

TaskGraph generate(const std::string& spec, std::uint64_t seed) {
  Rng rng(seed);
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const int arg = colon == std::string::npos
                      ? 0
                      : std::atoi(spec.c_str() + colon + 1);
  if (kind == "fft") return generate_fft_dag(arg > 0 ? arg : 8, rng);
  if (kind == "strassen") return generate_strassen_dag(rng);
  RandomDagParams params;
  params.num_tasks = arg > 0 ? arg : 50;
  params.width = 0.5;
  params.density = 0.8;
  params.regularity = 0.5;
  if (kind == "layered") return generate_layered_dag(params, rng);
  if (kind == "irregular") {
    params.jump = 2;
    return generate_irregular_dag(params, rng);
  }
  throw Error("unknown generator '" + spec + "'");
}

Cluster platform_of(const std::string& spec) {
  if (spec == "chti") return grid5000::chti();
  if (spec == "grillon") return grid5000::grillon();
  if (spec == "grelon") return grid5000::grelon();
  if (spec.rfind("flat:", 0) == 0) {
    int nodes = 0;
    double gflops = 0;
    if (std::sscanf(spec.c_str(), "flat:%d:%lf", &nodes, &gflops) == 2 &&
        nodes > 0 && gflops > 0)
      return Cluster::flat("flat" + std::to_string(nodes), nodes,
                           gflops * Giga, 100e-6, kGigabitPerSecond);
  }
  throw Error("unknown platform '" + spec + "'");
}

unsigned parse_threads(const char* text) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) usage(2);
  return static_cast<unsigned>(v);
}

/// Wall-clock watchdog for `rats run --timeout`: a detached thread
/// that force-exits the process (status 124, timeout(1) convention)
/// unless disarmed before the deadline.  A detached thread rather than
/// a joined one so a hung simulation cannot block the exit path.
class Watchdog {
 public:
  explicit Watchdog(double seconds) {
    if (seconds <= 0) return;
    std::thread([seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(seconds);
      if (cv_.wait_until(lock, deadline, [] { return disarmed_; })) return;
      std::fprintf(stderr, "rats run: timed out after %gs\n", seconds);
      std::_Exit(124);
    }).detach();
  }
  ~Watchdog() {
    std::lock_guard<std::mutex> lock(mutex_);
    disarmed_ = true;
    cv_.notify_all();
  }

 private:
  // Static: the detached thread may outlive the Watchdog object.
  static std::mutex mutex_;
  static std::condition_variable cv_;
  static bool disarmed_;
};

std::mutex Watchdog::mutex_;
std::condition_variable Watchdog::cv_;
bool Watchdog::disarmed_ = false;

int cmd_run(int argc, char** argv) {
  std::string file;
  scenario::RunOptions options;
  double timeout = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (a == "--trace") options.trace_path = next();
    else if (a == "--report-csv") options.report_csv_path = next();
    else if (a == "--report-json") options.report_json_path = next();
    else if (a == "--metrics") options.metrics_path = next();
    else if (a == "--profile") options.profile_path = next();
    else if (a == "--progress") options.progress = true;
    else if (a == "--threads") {
      options.has_threads = true;
      options.threads = parse_threads(next());
    } else if (a == "--csv") options.csv = true;
    else if (a == "--full") options.full = true;
    else if (a == "--check") {
      char* end = nullptr;
      const long v = std::strtol(next(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 1) usage(2);
      options.check = static_cast<int>(v);
    } else if (a == "--timeout") {
      char* end = nullptr;
      timeout = std::strtod(next(), &end);
      if (end == nullptr || *end != '\0' || timeout <= 0) usage(2);
    } else if (a == "--help" || a == "-h") usage(0);
    else if (!a.empty() && a[0] == '-') usage(2);
    else if (file.empty()) file = a;
    else usage(2);
  }
  if (file.empty()) {
    std::fprintf(stderr, "rats run: missing scenario file\n");
    usage(2);
  }
  const Watchdog watchdog(timeout);
  // Turn observability on before the spec parse so the "parse" span
  // and its counters are captured; scenario::run would only flip the
  // switches after parsing.
  if (!options.metrics_path.empty()) obs::set_metrics_enabled(true);
  if (!options.profile_path.empty()) obs::set_profiling_enabled(true);
  // RATS_RUN_STATS=1 prints how many schedule+simulate runs the
  // scenario cost — the CI gate that a traced run's matrix was
  // simulated exactly once (report and trace share the pass).
  const std::uint64_t runs_before = simulated_run_count();
  scenario::run(scenario::load_scenario(file), options);
  const char* stats = std::getenv("RATS_RUN_STATS");
  if (stats != nullptr && *stats != '\0' && *stats != '0')
    std::fprintf(stderr, "run-stats: simulated %llu runs\n",
                 static_cast<unsigned long long>(simulated_run_count() -
                                                 runs_before));
  return 0;
}

int cmd_verify(int argc, char** argv) {
  std::string file;
  unsigned threads = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads") {
      if (i + 1 >= argc) usage(2);
      threads = parse_threads(argv[++i]);
    } else if (a == "--help" || a == "-h") usage(0);
    else if (!a.empty() && a[0] == '-') usage(2);
    else if (file.empty()) file = a;
    else usage(2);
  }
  if (file.empty()) {
    std::fprintf(stderr, "rats verify: missing trace file\n");
    usage(2);
  }
  const ReplayReport report = verify_trace(file, threads);
  if (!report.ok) {
    std::fprintf(stderr, "FAIL %s\n", report.error.c_str());
    return 1;
  }
  std::printf("OK %s: %zu runs, %zu events replayed bit-identically\n",
              file.c_str(), report.runs, report.events);
  return 0;
}

int cmd_emit(int argc, char** argv) {
  std::string file, kind;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kind") {
      if (i + 1 >= argc) usage(2);
      kind = argv[++i];
    } else if (a == "--help" || a == "-h") usage(0);
    else if (!a.empty() && a[0] == '-') usage(2);
    else if (file.empty()) file = a;
    else usage(2);
  }
  if (file.empty() == kind.empty()) {
    std::fprintf(stderr, "rats emit: need a scenario file or --kind\n");
    usage(2);
  }
  const scenario::ScenarioSpec spec = kind.empty()
                                          ? scenario::load_scenario(file)
                                          : scenario::default_spec(kind);
  std::printf("%s", scenario::emit_scenario(spec).c_str());
  return 0;
}

int cmd_kinds() {
  for (const std::string& kind : scenario::kinds()) {
    const char* traced =
        scenario::kind_supports_trace(kind) ? "  (traceable)" : "";
    std::printf("%s%s\n", kind.c_str(), traced);
  }
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  fuzz::FuzzOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    auto next_long = [&](long min) {
      char* end = nullptr;
      const long v = std::strtol(next(), &end, 10);
      if (end == nullptr || *end != '\0' || v < min) usage(2);
      return v;
    };
    if (a == "--quick") options.count = 100;
    else if (a == "--count") options.count = static_cast<int>(next_long(1));
    else if (a == "--seed")
      options.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--timeout") {
      char* end = nullptr;
      options.timeout_secs = std::strtod(next(), &end);
      if (end == nullptr || *end != '\0' || options.timeout_secs < 0)
        usage(2);
    } else if (a == "--regress-dir") options.regress_dir = next();
    else if (a == "--index") options.index = static_cast<int>(next_long(0));
    else if (a == "--emit") options.emit_only = true;
    else if (a == "--no-minimize") options.minimize = false;
    else if (a == "--progress") options.progress = true;
    else if (a == "--metrics") options.metrics_path = next();
    else if (a == "--help" || a == "-h") usage(0);
    else usage(2);
  }
  const fuzz::FuzzResult result = fuzz::run_fuzz(options, std::cout);
  return result.failed == 0 ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  serve::DaemonOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    auto next_long = [&](long min) {
      char* end = nullptr;
      const long v = std::strtol(next(), &end, 10);
      if (end == nullptr || *end != '\0' || v < min) usage(2);
      return v;
    };
    if (a == "--socket") options.socket_path = next();
    else if (a == "--workers")
      options.workers = static_cast<int>(next_long(1));
    else if (a == "--queue")
      options.queue_capacity = static_cast<std::size_t>(next_long(1));
    else if (a == "--shard-timeout") {
      char* end = nullptr;
      options.shard_timeout = std::strtod(next(), &end);
      if (end == nullptr || *end != '\0' || options.shard_timeout <= 0)
        usage(2);
    } else if (a == "--retry-after")
      options.retry_after_ms = static_cast<int>(next_long(1));
    else if (a == "--shards")
      options.shards_per_job = static_cast<std::size_t>(next_long(1));
    else if (a == "--metrics") options.metrics_path = next();
    else if (a == "--progress") options.progress = true;
    else if (a == "--help" || a == "-h") usage(0);
    else usage(2);
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "rats serve: --socket is required\n");
    usage(2);
  }
  return serve::run_daemon(options);
}

int cmd_submit(int argc, char** argv) {
  std::string file, socket_path, out_path;
  serve::SubmitOptions options;
  bool stats = false, shutdown = false;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (a == "--socket") socket_path = next();
    else if (a == "--out") out_path = next();
    else if (a == "--timeout") {
      char* end = nullptr;
      options.timeout = std::strtod(next(), &end);
      if (end == nullptr || *end != '\0' || options.timeout <= 0) usage(2);
    } else if (a == "--progress") options.progress = true;
    else if (a == "--crash-test") options.crash_test = true;
    else if (a == "--stats") stats = true;
    else if (a == "--shutdown") shutdown = true;
    else if (a == "--help" || a == "-h") usage(0);
    else if (!a.empty() && a[0] == '-') usage(2);
    else if (file.empty()) file = a;
    else usage(2);
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "rats submit: --socket is required\n");
    usage(2);
  }
  if (stats) {
    std::printf("%s\n",
                serve::request(socket_path, "{\"cmd\":\"stats\"}").c_str());
    return 0;
  }
  if (shutdown) {
    std::printf("%s\n",
                serve::request(socket_path, "{\"cmd\":\"shutdown\"}").c_str());
    return 0;
  }
  if (file.empty()) {
    std::fprintf(stderr, "rats submit: missing scenario file\n");
    usage(2);
  }
  std::ifstream in(file, std::ios::binary);
  if (!in) throw Error("cannot read scenario '" + file + "'");
  std::ostringstream text;
  text << in.rdbuf();
  const std::string report =
      serve::submit_and_wait(socket_path, text.str(), options);
  if (out_path.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) throw Error("cannot write report '" + out_path + "'");
    out << report;
    out.close();
    if (!out.good()) throw Error("failed writing report '" + out_path + "'");
    std::fprintf(stderr, "wrote report %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_sched(int argc, char** argv) {
  std::string dag_file, gen_spec, platform = "grillon", algo = "time-cost";
  std::string dot_file, save_file;
  std::uint64_t seed = 42;
  SchedulerOptions options;
  SimulatorOptions sim_options;
  std::optional<double> mindelta, maxdelta, minrho;
  bool packing = true;

  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) sched_usage(2);
      return argv[++i];
    };
    if (a == "--dag") dag_file = next();
    else if (a == "--generate") gen_spec = next();
    else if (a == "--platform") platform = next();
    else if (a == "--algo") algo = next();
    else if (a == "--mindelta") mindelta = std::atof(next());
    else if (a == "--maxdelta") maxdelta = std::atof(next());
    else if (a == "--minrho") minrho = std::atof(next());
    else if (a == "--no-packing") packing = false;
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--no-contention") sim_options.contention = false;
    else if (a == "--dot") dot_file = next();
    else if (a == "--save") save_file = next();
    else if (a == "--help" || a == "-h") sched_usage(0);
    else sched_usage(2);
  }
  if (dag_file.empty() == gen_spec.empty()) {
    std::fprintf(stderr, "need exactly one of --dag or --generate\n");
    sched_usage(2);
  }

  const TaskGraph graph =
      dag_file.empty() ? generate(gen_spec, seed) : load_workflow(dag_file);
  const Cluster cluster = platform_of(platform);

  if (algo == "cpa") options.kind = SchedulerKind::Cpa;
  else if (algo == "mcpa") options.kind = SchedulerKind::Mcpa;
  else if (algo == "hcpa") options.kind = SchedulerKind::Hcpa;
  else if (algo == "delta") options.kind = SchedulerKind::RatsDelta;
  else if (algo == "time-cost") options.kind = SchedulerKind::RatsTimeCost;
  else if (algo == "auto-delta" || algo == "auto-time-cost") {
    const SchedulerKind kind = algo == "auto-delta"
                                   ? SchedulerKind::RatsDelta
                                   : SchedulerKind::RatsTimeCost;
    AutoTuner tuner;
    const DagFamily family =
        gen_spec.empty() ? DagFamily::Irregular : family_of(gen_spec);
    std::printf("auto-tuning %s for %s on %s...\n", algo.c_str(),
                to_string(family).c_str(), cluster.name().c_str());
    options = tuner.options(kind, family, cluster);
    const auto& t = tuner.tuned(family, cluster);
    std::printf("  tuned: mindelta=%.2f maxdelta=%.2f minrho=%.2f\n",
                t.mindelta, t.maxdelta, t.minrho);
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    sched_usage(2);
  }
  if (mindelta) options.rats.mindelta = *mindelta;
  if (maxdelta) options.rats.maxdelta = *maxdelta;
  if (minrho) options.rats.minrho = *minrho;
  options.rats.packing = packing;

  std::printf("workflow: %d tasks, %d edges; platform %s (%d nodes)\n",
              graph.num_tasks(), graph.num_edges(), cluster.name().c_str(),
              cluster.num_nodes());

  const Schedule schedule = build_schedule(graph, cluster, options);
  const SimulationResult result =
      simulate(graph, schedule, cluster, sim_options);

  std::printf("\n%s: makespan %.2f s (mapper estimate %.2f s), work %.1f "
              "proc*s, network %.1f MiB\n\n",
              to_string(options.kind).c_str(), result.makespan,
              schedule.estimated_makespan(), result.total_work,
              result.network_bytes / MiB);
  std::printf("%-20s %5s %9s %9s %9s\n", "task", "procs", "ready", "start",
              "finish");
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const auto& tl = result.timeline[static_cast<std::size_t>(t)];
    std::printf("%-20s %5zu %9.2f %9.2f %9.2f\n",
                graph.task(t).name.c_str(), schedule.of(t).procs.size(),
                tl.data_ready, tl.start, tl.finish);
  }

  if (!dot_file.empty()) {
    std::ofstream out(dot_file);
    out << graph.to_dot();
    std::printf("\nwrote DOT to %s\n", dot_file.c_str());
  }
  if (!save_file.empty()) {
    save_workflow(graph, save_file);
    std::printf("wrote workflow to %s\n", save_file.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) usage(2);
  const std::string command = argv[1];
  if (command == "run") return cmd_run(argc - 2, argv + 2);
  if (command == "verify") return cmd_verify(argc - 2, argv + 2);
  if (command == "emit") return cmd_emit(argc - 2, argv + 2);
  if (command == "kinds") return cmd_kinds();
  if (command == "fuzz") return cmd_fuzz(argc - 2, argv + 2);
  if (command == "sched") return cmd_sched(argc - 2, argv + 2);
  if (command == "serve") return cmd_serve(argc - 2, argv + 2);
  if (command == "submit") return cmd_submit(argc - 2, argv + 2);
  if (command == "--help" || command == "-h") usage(0);
  // Backwards compatibility: the pre-subcommand CLI started with "--".
  if (command.rfind("--", 0) == 0) return cmd_sched(argc - 1, argv + 1);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  usage(2);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
